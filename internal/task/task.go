// Package task defines the fork-join intermediate representation shared
// by every multiplier in the repository and by both execution engines.
//
// An algorithm (blocked DGEMM, Strassen, CAPS) is expressed once as a
// tree of Leaf, Seq and Par nodes. The virtual-time simulator
// (internal/sim) schedules the tree onto modeled hardware and integrates
// power; the real executor (internal/sched) runs the leaves' closures on
// goroutines. Keeping one IR guarantees the two engines execute the same
// algorithmic structure.
package task

import (
	"fmt"
	"sync/atomic"
)

// Kind classifies a leaf's dominant activity, for tracing and for the
// cost model's kernel-efficiency lookup.
type Kind int

const (
	// KindGEMM is a packed, register-blocked matrix-multiply kernel
	// (the OpenBLAS-style inner kernel).
	KindGEMM Kind = iota
	// KindBaseMul is the BOTS-style unrolled dense base-case solver
	// used below the Strassen/CAPS recursion cutover.
	KindBaseMul
	// KindAdd is an element-wise matrix addition or subtraction.
	KindAdd
	// KindCopy is a bulk copy (packing, buffer staging).
	KindCopy
	// KindOverhead is scheduling/control work with no useful flops.
	KindOverhead
)

var kindNames = [...]string{"gemm", "basemul", "add", "copy", "overhead"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// RegionID identifies a block of data for affinity tracking. Algorithms
// obtain IDs from a Regions allocator; the simulator charges remote
// traffic when a leaf reads a region last written by a different worker.
type RegionID uint32

// Regions hands out unique RegionIDs. The zero value is ready to use.
//
// Invariant: tree construction is single-threaded. Regions is NOT safe
// for concurrent use — IDs must stay dense and gap-free because the
// simulator indexes its writer table by them — and now that tree
// *execution* is multi-threaded (internal/sched runs leaves on
// persistent workers) it is tempting to build trees from inside leaf
// closures; don't. New detects overlapping calls and panics rather
// than silently issuing duplicate IDs.
type Regions struct {
	next RegionID
	busy int32 // overlap detector; see New
}

// New returns a fresh, never-before-issued RegionID. It panics if it
// observes a concurrent New on the same Regions: the counter increment
// is deliberately unsynchronized (builds are single-threaded by
// contract), so an overlap would corrupt the ID sequence.
func (r *Regions) New() RegionID {
	if atomic.AddInt32(&r.busy, 1) != 1 {
		panic("task: concurrent Regions.New — task trees must be built single-threaded")
	}
	r.next++
	id := r.next
	atomic.AddInt32(&r.busy, -1)
	return id
}

// Count returns how many regions have been issued.
func (r *Regions) Count() int { return int(r.next) }

// Work describes the resource demands of one leaf task. Byte fields
// count traffic at each memory-hierarchy level beyond L1; the cost model
// turns them into time and the power model into energy.
type Work struct {
	// Label names the leaf for traces ("mul C11", "pack A").
	Label string
	// Kind selects the kernel-efficiency class.
	Kind Kind
	// Flops is the number of double-precision operations performed.
	Flops float64
	// L3Bytes is traffic served by the shared last-level cache.
	L3Bytes float64
	// DRAMBytes is traffic that misses all caches.
	DRAMBytes float64
	// Reads and Writes are the data regions the leaf touches, used for
	// communication (remote-traffic) accounting.
	Reads  []RegionID
	Writes []RegionID
	// RegionBytes is the footprint of each listed region. When the
	// scheduler places a leaf on a worker other than a read region's
	// last writer, RegionBytes of remote (cache-to-cache) traffic are
	// charged per such region.
	RegionBytes float64
	// Run optionally performs the leaf's real arithmetic. The simulator
	// invokes it only when configured to verify numerics; the real
	// executor always invokes it.
	Run func()
}

type nodeKind int

const (
	leafNode nodeKind = iota
	seqNode
	parNode
)

// Node is a node of the fork-join tree. Nodes are immutable after
// construction except for the affinity and buffer annotations set by
// the With* methods during tree building.
type Node struct {
	kind     nodeKind
	work     Work
	children []*Node
	// affinity, if non-empty, is the set of workers permitted to run
	// this subtree. Masks intersect down the tree.
	affinity Mask
	// allocBytes is temporary-buffer memory that is live while this
	// subtree executes; the simulator tracks the high-water mark, which
	// reproduces the paper's "Strassen needs intermediate buffers,
	// so 4096 was the largest feasible size" observation.
	allocBytes float64
}

// Leaf returns a leaf node performing w.
func Leaf(w Work) *Node { return &Node{kind: leafNode, work: w} }

// Seq returns a node whose children execute one after another.
// Seq() with no children is a legal empty node.
func Seq(children ...*Node) *Node { return &Node{kind: seqNode, children: children} }

// Par returns a node whose children may execute concurrently.
func Par(children ...*Node) *Node { return &Node{kind: parNode, children: children} }

// WithAffinity restricts the subtree to the workers in mask (bit i set
// means worker i may execute leaves of this subtree). A zero mask means
// unrestricted. The uint64 form only reaches workers 0..63; use
// WithAffinityMask for larger machines.
func (n *Node) WithAffinity(mask uint64) *Node {
	n.affinity = MaskOfBits(mask)
	return n
}

// WithAffinityMask restricts the subtree to the workers in m. An empty
// mask means unrestricted. It returns n for chaining.
func (n *Node) WithAffinityMask(m Mask) *Node {
	n.affinity = m
	return n
}

// WithAlloc records that allocBytes of temporary buffer are live while
// this subtree executes. It returns n for chaining.
func (n *Node) WithAlloc(bytes float64) *Node {
	n.allocBytes = bytes
	return n
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.kind == leafNode }

// IsSeq reports whether n is a sequential composition.
func (n *Node) IsSeq() bool { return n.kind == seqNode }

// IsPar reports whether n is a parallel composition.
func (n *Node) IsPar() bool { return n.kind == parNode }

// Work returns the leaf's work descriptor; it panics for non-leaves.
func (n *Node) Work() *Work {
	if n.kind != leafNode {
		panic("task: Work() on non-leaf node")
	}
	return &n.work
}

// Children returns the node's children (nil for leaves).
func (n *Node) Children() []*Node { return n.children }

// Affinity returns the node's worker mask (empty = unrestricted).
func (n *Node) Affinity() Mask { return n.affinity }

// AllocBytes returns the temporary-buffer annotation.
func (n *Node) AllocBytes() float64 { return n.allocBytes }

// Walk visits every node in depth-first order, parents before children.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.children {
		c.Walk(visit)
	}
}

// Leaves returns the tree's leaves in deterministic depth-first order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// Stats aggregates structural and resource totals over a tree.
type Stats struct {
	Leaves      int
	Flops       float64
	L3Bytes     float64
	DRAMBytes   float64
	Depth       int     // maximum nesting depth
	AllocPeak   float64 // worst-case live temporary bytes along any path
	FlopsByKind map[Kind]float64
}

// Collect computes Stats for the tree rooted at n.
//
// AllocPeak is the structural worst case: along a Seq, sibling buffers
// are not live simultaneously (max); along a Par they may all be live
// (sum). The simulator separately reports the *scheduled* high-water,
// which can be lower when the executor runs Par children sequentially.
func Collect(n *Node) Stats {
	s := Stats{FlopsByKind: make(map[Kind]float64)}
	var rec func(node *Node, depth int) float64 // returns live-alloc bound
	rec = func(node *Node, depth int) float64 {
		if depth > s.Depth {
			s.Depth = depth
		}
		live := node.allocBytes
		switch node.kind {
		case leafNode:
			s.Leaves++
			s.Flops += node.work.Flops
			s.L3Bytes += node.work.L3Bytes
			s.DRAMBytes += node.work.DRAMBytes
			s.FlopsByKind[node.work.Kind] += node.work.Flops
		case seqNode:
			maxChild := 0.0
			for _, c := range node.children {
				if v := rec(c, depth+1); v > maxChild {
					maxChild = v
				}
			}
			live += maxChild
		case parNode:
			for _, c := range node.children {
				live += rec(c, depth+1)
			}
		}
		if live > s.AllocPeak {
			s.AllocPeak = live
		}
		return live
	}
	rec(n, 1)
	return s
}

// RunSerial executes every leaf's Run closure in depth-first order on
// the calling goroutine. It is the simplest correct executor and the
// oracle the concurrent engines are tested against.
func RunSerial(n *Node) {
	n.Walk(func(m *Node) {
		if m.IsLeaf() && m.work.Run != nil {
			m.work.Run()
		}
	})
}
