package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry: named counters, gauges and histograms that the
// pipeline increments as it works — run-cache hits and misses, worker
// occupancy, leaves dispatched, monitor samples, lost wraps. Metrics
// are process-global and always live (single atomic operations), and
// every metric is also published through the standard expvar registry
// so an embedding server exposes them on /debug/vars for free.
// report.MetricsTable renders the same registry for the CLIs.

// Counter is a monotonically increasing count.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. busy workers). It tracks the
// high-water mark alongside the current value.
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// Set stores an absolute level.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	updateMax(&g.max, v)
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	v := g.v.Add(delta)
	updateMax(&g.max, v)
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark since the last reset.
func (g *Gauge) Max() int64 { return g.max.Load() }

func updateMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// histBuckets is the number of power-of-two histogram buckets. Bucket
// i counts observations in [2^(i-histZero), 2^(i-histZero+1)); with
// histZero 30 the covered range is ~1 ns to ~34 s for values in
// seconds, which brackets everything the pipeline times.
const (
	histBuckets = 64
	histZero    = 30
)

// Histogram is a lock-free power-of-two histogram of float64
// observations. Values are stored as raw float64 (atomic bit images),
// so observations of any unit and magnitude — seconds, bytes, cell
// counts — survive unscaled: the old implementation kept the sum and
// max as nanosecond-scaled integers, which silently overflowed (and
// mangled MaxValue/Mean) for any observation that was not a short
// duration. The unit string, when set, is purely presentational:
// Metrics() renders it as a suffix.
type Histogram struct {
	name    string
	unit    string // rendering suffix ("s", "B", ...); "" = unitless
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bit image of the running sum
	maxBits atomic.Uint64 // float64 bit image of the max
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// maxFloat atomically raises the float64 stored in bits to at least v.
func maxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one value. Non-positive values land in the lowest
// bucket.
func (h *Histogram) Observe(v float64) {
	idx := 0
	if v > 0 {
		idx = math.Ilogb(v) + histZero
		if idx < 0 {
			idx = 0
		} else if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	maxFloat(&h.maxBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

// MaxValue returns the largest observed value, in the unit the caller
// observed in.
func (h *Histogram) MaxValue() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Unit returns the histogram's presentational unit suffix ("" when the
// histogram is unitless).
func (h *Histogram) Unit() string { return h.unit }

// Buckets returns the non-zero buckets as (lower bound, count) pairs
// in increasing order.
func (h *Histogram) Buckets() []struct {
	Low   float64
	Count int64
} {
	var out []struct {
		Low   float64
		Count int64
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, struct {
				Low   float64
				Count int64
			}{math.Pow(2, float64(i-histZero)), n})
		}
	}
	return out
}

// registry is the process-global named-metric store.
var registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// GetCounter returns the named counter, creating (and publishing to
// expvar) it on first use. Safe for concurrent use; idempotent.
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counts == nil {
		registry.counts = make(map[string]*Counter)
	}
	if c, ok := registry.counts[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counts[name] = c
	publish(name, func() any { return c.Value() })
	return c
}

// GetGauge returns the named gauge, creating it on first use.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]*Gauge)
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	publish(name, func() any { return g.Value() })
	return g
}

// GetHistogram returns the named unitless histogram, creating it on
// first use. Observations are kept in whatever unit the caller uses;
// use GetHistogramUnit to have that unit rendered in Metrics().
func GetHistogram(name string) *Histogram { return GetHistogramUnit(name, "") }

// GetHistogramUnit returns the named histogram, creating it with the
// given presentational unit suffix on first use. The unit set at
// creation wins; later calls with a different unit get the existing
// histogram unchanged.
func GetHistogramUnit(name, unit string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.hists == nil {
		registry.hists = make(map[string]*Histogram)
	}
	if h, ok := registry.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, unit: unit}
	registry.hists[name] = h
	publish(name, func() any {
		return map[string]any{"count": h.Count(), "mean": h.Mean(), "max": h.MaxValue()}
	})
	return h
}

// publish registers the metric with expvar under obs.<name>, guarding
// against the panic expvar raises on duplicate names (tests may reset
// and re-create metrics). Called with registry.mu held, which also
// serializes the Get/Publish window.
func publish(name string, f func() any) {
	key := "obs." + name
	if expvar.Get(key) != nil {
		return
	}
	expvar.Publish(key, expvar.Func(f))
}

// MetricValue is one rendered registry entry for tables and tests.
type MetricValue struct {
	Name  string
	Kind  string // "counter", "gauge", "histogram"
	Value string
}

// Metrics snapshots the registry, sorted by name.
func Metrics() []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]MetricValue, 0,
		len(registry.counts)+len(registry.gauges)+len(registry.hists))
	for n, c := range registry.counts {
		out = append(out, MetricValue{Name: n, Kind: "counter", Value: fmt.Sprintf("%d", c.Value())})
	}
	for n, g := range registry.gauges {
		out = append(out, MetricValue{
			Name: n, Kind: "gauge",
			Value: fmt.Sprintf("%d (max %d)", g.Value(), g.Max()),
		})
	}
	for n, h := range registry.hists {
		out = append(out, MetricValue{
			Name: n, Kind: "histogram",
			Value: fmt.Sprintf("n=%d mean=%.3g%s max=%.3g%s",
				h.Count(), h.Mean(), h.unit, h.MaxValue(), h.unit),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResetMetrics zeroes every registered metric (the registrations and
// expvar publications persist). Tests and benchmarks use it to start
// from a clean count.
func ResetMetrics() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counts {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
		g.max.Store(0)
	}
	for _, h := range registry.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
		h.maxBits.Store(0)
	}
}
