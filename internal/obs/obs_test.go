package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestDisabledSpansAreNoOps(t *testing.T) {
	Disable()
	tr := NewTrack("ignored")
	sp := StartOn(tr, "x")
	if sp.Live() {
		t.Fatal("span live while tracing disabled")
	}
	sp.ArgInt("n", 4096)
	sp.End()
	sp2 := Start(context.Background(), "y")
	sp2.End()
}

// TestDisabledPathAllocatesNothing pins the hot-path contract: with
// tracing off, starting/ending spans and annotating them performs zero
// allocations, so instrumented code costs nothing by default.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	Disable()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Start(ctx, "cell")
		sp.Arg("alg", "CAPS")
		sp.ArgInt("n", 4096)
		sp.End()
		sp2 := StartOn(Track{}, "sim.run")
		sp2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestSpansRecordOnNamedTracks(t *testing.T) {
	c := Enable()
	defer Disable()

	tr := NewTrack("worker 0")
	outer := StartOn(tr, "cell")
	outer.Arg("alg", "CAPS")
	outer.ArgInt("n", 128)
	inner := StartOn(tr, "simulate")
	inner.End()
	outer.End()

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// End order: inner first.
	if spans[0].Name != "simulate" || spans[1].Name != "cell" {
		t.Fatalf("span order %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Args["alg"] != "CAPS" || spans[1].Args["n"] != "128" {
		t.Fatalf("args not recorded: %v", spans[1].Args)
	}
	if spans[0].Start < spans[1].Start {
		t.Fatal("inner span starts before its parent")
	}
	names := c.TrackNames()
	if len(names) != 2 || names[0] != "main" || names[1] != "worker 0" {
		t.Fatalf("tracks %v", names)
	}
}

func TestContextTrackPropagation(t *testing.T) {
	c := Enable()
	defer Disable()
	tr := NewTrack("driver")
	ctx := WithTrack(context.Background(), tr)
	sp := Start(ctx, "sweep")
	sp.End()
	spans := c.Spans()
	if len(spans) != 1 || spans[0].Track != 1 {
		t.Fatalf("span did not land on the context's track: %+v", spans)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	c := Enable()
	defer Disable()
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := NewTrack("w")
			for i := 0; i < per; i++ {
				sp := StartOn(tr, "op")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(c.Spans()); got != workers*per {
		t.Fatalf("recorded %d spans, want %d", got, workers*per)
	}
}

func TestMetricsRegistry(t *testing.T) {
	ResetMetrics()
	c := GetCounter("test.counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := GetCounter("test.counter"); again != c {
		t.Fatal("GetCounter is not idempotent")
	}

	g := GetGauge("test.gauge")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Fatalf("gauge = %d (max %d), want 1 (max 5)", g.Value(), g.Max())
	}

	h := GetHistogram("test.hist")
	for _, v := range []float64{0.001, 0.002, 0.004, 1.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count %d, want 4", h.Count())
	}
	if h.MaxValue() != 1.5 {
		t.Fatalf("histogram max %v, want 1.5", h.MaxValue())
	}
	if m := h.Mean(); m < 0.37 || m > 0.38 {
		t.Fatalf("histogram mean %v, want ~0.377", m)
	}
	if bs := h.Buckets(); len(bs) == 0 {
		t.Fatal("histogram has no buckets")
	}

	found := map[string]bool{}
	for _, m := range Metrics() {
		found[m.Name] = true
	}
	for _, want := range []string{"test.counter", "test.gauge", "test.hist"} {
		if !found[want] {
			t.Fatalf("Metrics() misses %q (have %v)", want, found)
		}
	}

	ResetMetrics()
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatal("ResetMetrics left residue")
	}
}

func TestHistogramExtremes(t *testing.T) {
	ResetMetrics()
	h := GetHistogram("test.extremes")
	h.Observe(0)    // lowest bucket
	h.Observe(-5)   // lowest bucket, no panic
	h.Observe(1e30) // clamps to top bucket
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if h.MaxValue() != 1e30 {
		t.Fatalf("max %v, want 1e30", h.MaxValue())
	}
}

// TestHistogramNonDurationValues pins the unit fix: the old
// implementation kept sum/max as nanosecond-scaled int64s, so a
// byte-count observation like 3.5e12 overflowed the scaling and
// MaxValue returned garbage. Values of any unit must round-trip
// exactly now.
func TestHistogramNonDurationValues(t *testing.T) {
	ResetMetrics()
	h := GetHistogramUnit("test.bytes", "B")
	for _, v := range []float64{1024, 3.5e12, 2e15} {
		h.Observe(v)
	}
	if got := h.MaxValue(); got != 2e15 {
		t.Fatalf("max %v, want 2e15", got)
	}
	if got, want := h.Mean(), (1024+3.5e12+2e15)/3; math.Abs(got-want) > 1e-3*want {
		t.Fatalf("mean %v, want %v", got, want)
	}
	if h.Unit() != "B" {
		t.Fatalf("unit %q, want B", h.Unit())
	}
	// The unit renders as a suffix in the metrics table.
	for _, m := range Metrics() {
		if m.Name == "test.bytes" && !strings.Contains(m.Value, "B") {
			t.Fatalf("metrics row %q lacks the B unit suffix", m.Value)
		}
	}
}

// TestHistogramConcurrentObserve: the float-bits CAS loops must be
// race-free and lose no observations.
func TestHistogramConcurrentObserve(t *testing.T) {
	ResetMetrics()
	h := GetHistogram("test.concurrent")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if got := math.Float64frombits(h.sumBits.Load()); got != workers*per {
		t.Fatalf("sum %v, want %d (CAS add lost updates)", got, workers*per)
	}
}
