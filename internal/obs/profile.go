package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms the standard Go CPU and heap profilers from CLI
// flag values: cpuPath starts a CPU profile immediately, memPath
// schedules a heap profile at stop time. Either path may be empty.
// The returned stop function is safe to call exactly once (defer it
// from main); it finishes the CPU profile and writes the heap profile.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
