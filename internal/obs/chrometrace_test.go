package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceBuilderRoundTrip(t *testing.T) {
	b := NewTraceBuilder()
	b.ProcessName(1, "simulated machine")
	b.ThreadName(1, 0, "worker 0")
	b.ThreadName(1, 1, "worker 1")
	b.Complete(1, 0, "gemm", 0, 0.5, map[string]any{"kind": "GEMM"})
	b.Complete(1, 1, "add", 0.1, 0.2, nil)
	b.Complete(1, 0, "gemm", 0.5, 0.5, nil)
	for i := 0; i < 10; i++ {
		ts := float64(i) * 0.1
		b.Counter(1, "PKG W", ts, map[string]float64{"W": 20 + float64(i)})
		b.Counter(1, "DRAM W", ts, map[string]float64{"W": 3})
	}

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Processes[1] != "simulated machine" {
		t.Fatalf("process name lost: %v", st.Processes)
	}
	if st.ThreadNames["1/0"] != "worker 0" || st.ThreadNames["1/1"] != "worker 1" {
		t.Fatalf("thread names lost: %v", st.ThreadNames)
	}
	if st.SpansPerThread["1/0"] != 2 || st.SpansPerThread["1/1"] != 1 {
		t.Fatalf("span counts %v", st.SpansPerThread)
	}
	if st.CounterSamples["PKG W"] != 10 || st.CounterSamples["DRAM W"] != 10 {
		t.Fatalf("counter samples %v", st.CounterSamples)
	}
}

// TestWriteJSONSortsOutOfOrderSpans: events appended out of time order
// (the natural result of collecting spans at End time) must still emit
// monotone per-track timestamps.
func TestWriteJSONSortsOutOfOrderSpans(t *testing.T) {
	b := NewTraceBuilder()
	b.Complete(1, 0, "late", 5, 1, nil)
	b.Complete(1, 0, "early", 0, 1, nil)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(&buf); err != nil {
		t.Fatalf("sorted output fails validation: %v", err)
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [}`,
		"empty":           `{"traceEvents": []}`,
		"bad phase":       `{"traceEvents": [{"name":"x","ph":"Q","ts":0,"pid":1,"tid":0}]}`,
		"negative ts":     `{"traceEvents": [{"name":"x","ph":"X","ts":-1,"dur":1,"pid":1,"tid":0}]}`,
		"regressing":      `{"traceEvents": [{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":0},{"name":"b","ph":"X","ts":1,"dur":1,"pid":1,"tid":0}]}`,
		"bare counter":    `{"traceEvents": [{"name":"c","ph":"C","ts":0,"pid":1,"tid":0}]}`,
		"counter regress": `{"traceEvents": [{"name":"c","ph":"C","ts":5,"pid":1,"args":{"W":1}},{"name":"c","ph":"C","ts":1,"pid":1,"args":{"W":2}}]}`,
	}
	for name, raw := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestAddCollectorExportsSpans(t *testing.T) {
	c := Enable()
	defer Disable()
	tr := NewTrack("driver worker 0")
	sp := StartOn(tr, "cell")
	sp.Arg("alg", "Strassen")
	sp.End()

	b := NewTraceBuilder()
	b.AddCollector(c, 2, "experiment driver (wall time)")
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Processes[2] != "experiment driver (wall time)" {
		t.Fatalf("processes %v", st.Processes)
	}
	if st.ThreadNames["2/1"] != "driver worker 0" {
		t.Fatalf("threads %v", st.ThreadNames)
	}
	if st.SpansPerThread["2/1"] != 1 {
		t.Fatalf("spans %v", st.SpansPerThread)
	}
}
