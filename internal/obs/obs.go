// Package obs is the repository's observability layer: span tracing,
// a process-wide metrics registry, and a Chrome trace-event (Perfetto)
// exporter that merges driver spans with the simulator's power
// timeline.
//
// The paper's whole argument rests on seeing where time and joules go
// (its Fig. 3–6 power-over-time traces are the evidence for the EP
// model); this package gives the now-concurrent pipeline the same
// lens: where a cell spends its wall-clock, how busy the driver's
// workers are, how often the run cache hits, how many samples the
// monitor observed.
//
// Tracing is off by default and compiled down to a handful of atomic
// loads on the hot paths: every Start/End on a disabled collector is a
// no-op that performs zero allocations, so instrumented code pays
// nothing until someone calls Enable (the CLIs do when -trace-out is
// given). Metrics are always live — they are single atomic adds, far
// below measurement noise at the granularity they are wired at.
package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates span tracing. Collector pointers are published through
// current so spans started before a Disable still append to the
// collector they were started on.
var (
	enabled atomic.Bool
	current atomic.Pointer[Collector]
)

// Enabled reports whether span tracing is collecting. Hot paths use it
// to skip span construction (and any argument formatting) entirely.
func Enabled() bool { return enabled.Load() }

// Enable installs a fresh global collector and turns tracing on,
// returning the collector so the caller can export it later.
func Enable() *Collector {
	c := NewCollector()
	current.Store(c)
	enabled.Store(true)
	return c
}

// Disable turns span tracing off. Spans already started keep a
// reference to their collector and still record on End; new Starts
// become no-ops.
func Disable() {
	enabled.Store(false)
	current.Store(nil)
}

// ActiveCollector returns the installed collector, or nil when tracing
// is disabled.
func ActiveCollector() *Collector { return current.Load() }

// SpanEvent is one recorded span: a named interval on a track.
// Timestamps are wall-clock durations since the collector's epoch.
type SpanEvent struct {
	Name  string
	Track int32
	Start time.Duration
	Dur   time.Duration
	// Args are optional key/value annotations (algorithm, size, cache
	// verdict, ...). Nil for un-annotated spans.
	Args map[string]string
}

// Collector accumulates span events. It is safe for concurrent use;
// the append path is one short critical section.
type Collector struct {
	epoch time.Time

	mu     sync.Mutex
	spans  []SpanEvent
	tracks []string // track id → display name; id 0 is "main"
}

// NewCollector returns an empty collector with its epoch at now.
// Most callers want Enable, which also installs it globally.
func NewCollector() *Collector {
	return &Collector{epoch: time.Now(), tracks: []string{"main"}}
}

// Epoch returns the collector's time zero.
func (c *Collector) Epoch() time.Time { return c.epoch }

// Spans returns a copy of the recorded span events.
func (c *Collector) Spans() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanEvent(nil), c.spans...)
}

// TrackNames returns the track display names indexed by track id.
func (c *Collector) TrackNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.tracks...)
}

// Track identifies one span track (one row in the exported trace —
// typically one per worker goroutine). The zero Track is valid: it
// targets the active collector's "main" track, or nothing when
// tracing is disabled.
type Track struct {
	c  *Collector
	id int32
}

// NewTrack registers a named track on the active collector. When
// tracing is disabled it returns the zero Track; callers on hot paths
// should guard the (formatting of the) name with Enabled().
func NewTrack(name string) Track {
	c := current.Load()
	if c == nil {
		return Track{}
	}
	return c.NewTrack(name)
}

// NewTrack registers a named track on this collector.
func (c *Collector) NewTrack(name string) Track {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracks = append(c.tracks, name)
	return Track{c: c, id: int32(len(c.tracks) - 1)}
}

// Span is one in-flight interval. The zero Span is a no-op: End and
// the Arg methods return immediately, so disabled paths cost nothing.
// Spans are values; do not copy a live Span and End both copies.
type Span struct {
	c     *Collector
	name  string
	track int32
	start time.Duration
	args  map[string]string
}

// Live reports whether the span will record on End. Use it to skip
// argument formatting on disabled paths.
func (s *Span) Live() bool { return s.c != nil }

// StartOn begins a span on an explicit track — the form hot loops and
// per-worker code use (no context plumbing). A zero Track falls back
// to the active collector's "main" track; when tracing is disabled the
// returned Span is the zero no-op.
func StartOn(t Track, name string) Span {
	c := t.c
	if c == nil {
		if !enabled.Load() {
			return Span{}
		}
		c = current.Load()
		if c == nil {
			return Span{}
		}
	}
	return Span{c: c, name: name, track: t.id, start: time.Since(c.epoch)}
}

// trackKey carries a Track through a context.
type trackKey struct{}

// WithTrack returns a context carrying the track, so Start calls
// downstream land on it.
func WithTrack(ctx context.Context, t Track) context.Context {
	return context.WithValue(ctx, trackKey{}, t)
}

// Start begins a span on the context's track (or "main"). It returns
// the zero no-op Span when tracing is disabled, allocating nothing.
func Start(ctx context.Context, name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	if t, ok := ctx.Value(trackKey{}).(Track); ok {
		return StartOn(t, name)
	}
	return StartOn(Track{}, name)
}

// Arg annotates a live span with a string value; no-op on a dead span.
func (s *Span) Arg(key, value string) {
	if s.c == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[key] = value
}

// ArgInt annotates a live span with an integer. Formatting happens
// only when the span is live, so disabled paths never allocate.
func (s *Span) ArgInt(key string, v int) {
	if s.c == nil {
		return
	}
	s.Arg(key, fmt.Sprintf("%d", v))
}

// ArgFloat annotates a live span with a float.
func (s *Span) ArgFloat(key string, v float64) {
	if s.c == nil {
		return
	}
	s.Arg(key, fmt.Sprintf("%g", v))
}

// End records the span. Calling End on the zero Span is a no-op; End
// must be called at most once per started span.
func (s *Span) End() {
	c := s.c
	if c == nil {
		return
	}
	ev := SpanEvent{
		Name:  s.name,
		Track: s.track,
		Start: s.start,
		Dur:   time.Since(c.epoch) - s.start,
		Args:  s.args,
	}
	s.c = nil
	c.mu.Lock()
	c.spans = append(c.spans, ev)
	c.mu.Unlock()
}
