package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event (Perfetto-loadable) export. The builder is
// deliberately generic — named processes, named threads, complete
// ("X") spans and counter ("C") series with float timestamps in
// seconds — so consumers can merge heterogeneous timebases into one
// file: the simulator's virtual-time worker schedule and RAPL power
// counters live in one process, the driver's wall-clock spans in
// another. Perfetto nests same-thread spans by time containment, so no
// parent ids are needed.
//
// The exported JSON is the object form {"traceEvents": [...]}, which
// both chrome://tracing and https://ui.perfetto.dev load directly.

// traceEvent is one Chrome trace event. Timestamps and durations are
// microseconds, per the trace-event spec.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceBuilder accumulates trace events for one exported file. Not
// safe for concurrent use; build from one goroutine after the run.
type TraceBuilder struct {
	events []traceEvent
}

// NewTraceBuilder returns an empty builder.
func NewTraceBuilder() *TraceBuilder { return &TraceBuilder{} }

// ProcessName names a process (one top-level group in the viewer).
func (b *TraceBuilder) ProcessName(pid int, name string) {
	b.events = append(b.events, traceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// ThreadName names a thread (one track) within a process.
func (b *TraceBuilder) ThreadName(pid, tid int, name string) {
	b.events = append(b.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Complete adds one complete span. startSec/durSec are seconds in the
// track's timebase (virtual or wall — the file does not care).
func (b *TraceBuilder) Complete(pid, tid int, name string, startSec, durSec float64, args map[string]any) {
	b.events = append(b.events, traceEvent{
		Name: name, Ph: "X", TS: startSec * 1e6, Dur: durSec * 1e6,
		PID: pid, TID: tid, Args: args,
	})
}

// Counter adds one sample of a counter track. Each distinct name is
// its own track; the series map's keys chart as stacked series.
func (b *TraceBuilder) Counter(pid int, name string, tSec float64, series map[string]float64) {
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	b.events = append(b.events, traceEvent{
		Name: name, Ph: "C", TS: tSec * 1e6, PID: pid, Args: args,
	})
}

// AddCollector dumps a span collector's tracks and spans into the
// builder under one process: one named thread per obs track.
func (b *TraceBuilder) AddCollector(c *Collector, pid int, processName string) {
	if c == nil {
		return
	}
	b.ProcessName(pid, processName)
	for id, name := range c.TrackNames() {
		b.ThreadName(pid, id, name)
	}
	for _, sp := range c.Spans() {
		var args map[string]any
		if len(sp.Args) > 0 {
			args = make(map[string]any, len(sp.Args))
			for k, v := range sp.Args {
				args[k] = v
			}
		}
		b.Complete(pid, int(sp.Track), sp.Name, sp.Start.Seconds(), sp.Dur.Seconds(), args)
	}
}

// WriteJSON sorts the events by timestamp (metadata first) and writes
// the {"traceEvents": [...]} object.
func (b *TraceBuilder) WriteJSON(w io.Writer) error {
	sort.SliceStable(b.events, func(i, j int) bool {
		mi, mj := b.events[i].Ph == "M", b.events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return b.events[i].TS < b.events[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     b.events,
		"displayTimeUnit": "ms",
	})
}

// TraceStats summarizes a validated trace file for structural golden
// tests: which tracks exist, how many spans and counter samples each
// carries.
type TraceStats struct {
	// Events is the total event count, metadata included.
	Events int
	// Processes maps pid → process_name.
	Processes map[int]string
	// ThreadNames maps "pid/tid" → thread_name.
	ThreadNames map[string]string
	// SpansPerThread maps "pid/tid" → number of X events.
	SpansPerThread map[string]int
	// CounterSamples maps counter track name → number of C events.
	CounterSamples map[string]int
}

// ValidateChromeTrace structurally checks an exported trace: the JSON
// decodes as {"traceEvents": [...]}, every event has a known phase and
// sane timestamps, and per-track event timestamps are monotone
// non-decreasing. It returns per-track statistics for golden
// assertions.
func ValidateChromeTrace(r io.Reader) (*TraceStats, error) {
	var file struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("obs: trace does not decode: %w", err)
	}
	if len(file.TraceEvents) == 0 {
		return nil, fmt.Errorf("obs: trace holds no events")
	}
	st := &TraceStats{
		Events:         len(file.TraceEvents),
		Processes:      make(map[int]string),
		ThreadNames:    make(map[string]string),
		SpansPerThread: make(map[string]int),
		CounterSamples: make(map[string]int),
	}
	lastSpanTS := make(map[string]float64)    // per pid/tid
	lastCounterTS := make(map[string]float64) // per pid/name
	for i, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				st.Processes[ev.PID] = name
			case "thread_name":
				st.ThreadNames[fmt.Sprintf("%d/%d", ev.PID, ev.TID)] = name
			default:
				return nil, fmt.Errorf("obs: event %d: unknown metadata %q", i, ev.Name)
			}
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return nil, fmt.Errorf("obs: event %d (%q): negative ts/dur %v/%v", i, ev.Name, ev.TS, ev.Dur)
			}
			key := fmt.Sprintf("%d/%d", ev.PID, ev.TID)
			if last, ok := lastSpanTS[key]; ok && ev.TS < last {
				return nil, fmt.Errorf("obs: event %d (%q): track %s timestamps regress (%v after %v)",
					i, ev.Name, key, ev.TS, last)
			}
			lastSpanTS[key] = ev.TS
			st.SpansPerThread[key]++
		case "C":
			if ev.TS < 0 {
				return nil, fmt.Errorf("obs: event %d (%q): negative counter ts %v", i, ev.Name, ev.TS)
			}
			key := fmt.Sprintf("%d/%s", ev.PID, ev.Name)
			if last, ok := lastCounterTS[key]; ok && ev.TS < last {
				return nil, fmt.Errorf("obs: event %d: counter %q timestamps regress (%v after %v)",
					i, ev.Name, ev.TS, last)
			}
			lastCounterTS[key] = ev.TS
			if len(ev.Args) == 0 {
				return nil, fmt.Errorf("obs: event %d: counter %q carries no series", i, ev.Name)
			}
			st.CounterSamples[ev.Name]++
		default:
			return nil, fmt.Errorf("obs: event %d (%q): unsupported phase %q", i, ev.Name, ev.Ph)
		}
	}
	return st, nil
}
