package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzValidateChromeTrace feeds arbitrary bytes to the trace validator.
// The only contract fuzzing can check without an oracle is totality:
// every input either validates or returns an error — never a panic —
// and a returned *TraceStats is internally consistent.
func FuzzValidateChromeTrace(f *testing.F) {
	// Seed with a minimal valid trace, near-miss mutations, and junk.
	valid := `{"traceEvents":[` +
		`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"sim"}},` +
		`{"ph":"X","pid":1,"tid":2,"ts":0,"dur":5,"name":"gemm"},` +
		`{"ph":"X","pid":1,"tid":2,"ts":5,"dur":1,"name":"add"},` +
		`{"ph":"C","pid":1,"tid":0,"ts":0,"name":"power","args":{"PKG":20}}]}`
	f.Add([]byte(valid))
	f.Add([]byte(strings.Replace(valid, `"ts":5`, `"ts":-5`, 1)))
	f.Add([]byte(strings.Replace(valid, `"ph":"C"`, `"ph":"Z"`, 1)))
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte(`{"traceEvents":[{"ph":"X","ts":1e308,"dur":1e308}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ValidateChromeTrace(bytes.NewReader(data))
		if err != nil {
			if st != nil {
				t.Fatal("error with non-nil stats")
			}
			return
		}
		if st == nil {
			t.Fatal("nil stats without error")
		}
		if st.Events <= 0 {
			t.Fatalf("validated trace reports %d events", st.Events)
		}
		spans := 0
		for _, n := range st.SpansPerThread {
			if n <= 0 {
				t.Fatalf("empty span track recorded: %+v", st.SpansPerThread)
			}
			spans += n
		}
		counters := 0
		for _, n := range st.CounterSamples {
			counters += n
		}
		meta := len(st.Processes) + len(st.ThreadNames)
		if spans+counters+meta > st.Events {
			t.Fatalf("stats exceed event count: %d spans + %d counters + %d meta > %d events",
				spans, counters, meta, st.Events)
		}
	})
}
