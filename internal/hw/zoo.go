package hw

import (
	"fmt"
	"math"

	"capscale/internal/task"
)

// Additional platform models beyond the paper's test machine, for
// crossover and EP studies across platform balances (the paper's
// stated goal: "make algorithmic determinations based upon a target
// problem scale, relative platform performance and peak power
// threshold").

// XeonE52690v3 returns a 12-core Haswell-EP server: FMA peak, large
// shared cache, four DDR4 channels. High compute AND high bandwidth.
func XeonE52690v3() *Machine {
	m := &Machine{
		Name:                "Intel Xeon E5-2690 v3 (Haswell-EP, 12c)",
		Cores:               12,
		FreqHz:              2.6e9,
		FlopsPerCycle:       16, // AVX2 FMA
		L1:                  Cache{SizeBytes: 32 << 10, LineBytes: 64},
		L2:                  Cache{SizeBytes: 256 << 10, LineBytes: 64},
		L3:                  Cache{SizeBytes: 30 << 20, LineBytes: 64},
		L3Bandwidth:         300e9,
		DRAMBandwidth:       62e9,
		DRAMStreamBandwidth: 12e9,
		RemoteBandwidth:     24e9,
		KernelEff: map[task.Kind]float64{
			task.KindGEMM:     0.90,
			task.KindBaseMul:  0.30,
			task.KindAdd:      0.95,
			task.KindCopy:     0.95,
			task.KindOverhead: 0.01,
		},
		TaskOverhead:  1.0e-6,
		StealOverhead: 2.0e-6,
		Power: PowerModel{
			PkgIdle:    22,
			CoreIdle:   1.2,
			CoreDyn:    8.0,
			L3PerGBs:   0.01,
			DRAMIdle:   4.0,
			DRAMPerGBs: 0.18,
		},
	}
	mustValid(m)
	return m
}

// SkylakeDesktop returns a 4-core desktop part: FMA peak against two
// DDR4 channels — a higher compute-to-bandwidth ratio than the paper's
// machine, pushing the Strassen crossover (Eq. 9) further out.
func SkylakeDesktop() *Machine {
	m := &Machine{
		Name:                "Skylake desktop (4c, DDR4-2400 dual channel)",
		Cores:               4,
		FreqHz:              3.5e9,
		FlopsPerCycle:       16,
		L1:                  Cache{SizeBytes: 32 << 10, LineBytes: 64},
		L2:                  Cache{SizeBytes: 256 << 10, LineBytes: 64},
		L3:                  Cache{SizeBytes: 8 << 20, LineBytes: 64},
		L3Bandwidth:         120e9,
		DRAMBandwidth:       30e9,
		DRAMStreamBandwidth: 14e9,
		RemoteBandwidth:     20e9,
		KernelEff: map[task.Kind]float64{
			task.KindGEMM:     0.92,
			task.KindBaseMul:  0.32,
			task.KindAdd:      0.95,
			task.KindCopy:     0.95,
			task.KindOverhead: 0.01,
		},
		TaskOverhead:  1.0e-6,
		StealOverhead: 2.0e-6,
		Power: PowerModel{
			PkgIdle:    8,
			CoreIdle:   1.3,
			CoreDyn:    10.5,
			L3PerGBs:   0.012,
			DRAMIdle:   1.5,
			DRAMPerGBs: 0.2,
		},
	}
	mustValid(m)
	return m
}

// BandwidthRichNode returns a hypothetical HBM-class node: modest
// compute against extreme bandwidth, pulling the Strassen crossover
// inward — useful for showing the Eq. 9 tradeoff inverting.
func BandwidthRichNode() *Machine {
	m := &Machine{
		Name:                "hypothetical HBM node (8c, 400 GB/s)",
		Cores:               8,
		FreqHz:              2.0e9,
		FlopsPerCycle:       8,
		L1:                  Cache{SizeBytes: 32 << 10, LineBytes: 64},
		L2:                  Cache{SizeBytes: 512 << 10, LineBytes: 64},
		L3:                  Cache{SizeBytes: 16 << 20, LineBytes: 64},
		L3Bandwidth:         600e9,
		DRAMBandwidth:       400e9,
		DRAMStreamBandwidth: 60e9,
		RemoteBandwidth:     80e9,
		KernelEff: map[task.Kind]float64{
			task.KindGEMM:     0.88,
			task.KindBaseMul:  0.30,
			task.KindAdd:      0.95,
			task.KindCopy:     0.95,
			task.KindOverhead: 0.01,
		},
		TaskOverhead:  1.0e-6,
		StealOverhead: 2.0e-6,
		Power: PowerModel{
			PkgIdle:    18,
			CoreIdle:   1.0,
			CoreDyn:    6.0,
			L3PerGBs:   0.008,
			DRAMIdle:   8.0,
			DRAMPerGBs: 0.05,
		},
	}
	mustValid(m)
	return m
}

// Zoo returns every built-in machine, the paper's first.
func Zoo() []*Machine {
	return []*Machine{HaswellE31225(), XeonE52690v3(), SkylakeDesktop(), BandwidthRichNode()}
}

func mustValid(m *Machine) {
	if err := m.Validate(); err != nil {
		panic("hw: built-in machine invalid: " + err.Error())
	}
}

// MaxPower returns the machine's worst-case draw: every core compute-
// saturated while the memory system streams at full bandwidth.
func (m *Machine) MaxPower() float64 {
	acts := make([]Activity, m.Cores)
	for i := range acts {
		acts[i] = Activity{
			Utilization: 1,
			DRAMRate:    m.DRAMBandwidth / float64(m.Cores),
			L3Rate:      m.L3Bandwidth / float64(m.Cores),
		}
	}
	return m.SegmentPower(acts).Total()
}

// dvfsExponent models dynamic power ∝ f·V² with voltage tracking
// frequency sublinearly: P_dyn ∝ f^2.4.
const dvfsExponent = 2.4

// minFreqScale is the lowest frequency DVFS can reach relative to
// nominal (real parts bottom out around a quarter of their top clock);
// caps that would require less are infeasible by frequency scaling
// alone — the regime where only an algorithmic change fits the budget.
const minFreqScale = 0.25

// DeratedForCap returns a copy of m frequency-scaled (DVFS) so that
// its worst-case draw fits capWatts, the way firmware enforces a RAPL
// package power limit. Core dynamic power scales as f^2.4; static
// terms are unchanged. It returns an error when the cap sits below the
// static floor, and m itself (unchanged) when the cap is not binding.
// The DVFS path is the baseline the paper's "power-scaling algorithmic
// complexity" proposal competes against.
func (m *Machine) DeratedForCap(capWatts float64) (*Machine, error) {
	if m.MaxPower() <= capWatts {
		return m, nil
	}
	static := m.MaxPower() - float64(m.Cores)*m.Power.CoreDyn
	if capWatts <= static {
		return nil, fmt.Errorf("hw: cap %.1f W below static floor %.1f W of %q", capWatts, static, m.Name)
	}
	// Solve static + N·CoreDyn·s^2.4 = cap for the frequency scale s.
	s := math.Pow((capWatts-static)/(float64(m.Cores)*m.Power.CoreDyn), 1/dvfsExponent)
	if s < minFreqScale {
		return nil, fmt.Errorf("hw: cap %.1f W needs %.0f%% of nominal frequency, below the %.0f%% DVFS floor of %q",
			capWatts, 100*s, 100*minFreqScale, m.Name)
	}

	out := *m
	out.Name = fmt.Sprintf("%s @ %.0f%% (RAPL cap %.0f W)", m.Name, 100*s, capWatts)
	out.FreqHz = m.FreqHz * s
	out.Power.CoreDyn = m.Power.CoreDyn * math.Pow(s, dvfsExponent)
	// Copy the efficiency map so callers cannot alias the original.
	out.KernelEff = make(map[task.Kind]float64, len(m.KernelEff))
	for k, v := range m.KernelEff {
		out.KernelEff[k] = v
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}
