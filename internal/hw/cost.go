package hw

import "capscale/internal/task"

// Contention carries the shared-resource bandwidth available to one
// leaf at dispatch time, as decided by the scheduler from the number of
// concurrently active memory streams.
type Contention struct {
	// DRAMBandwidth is this leaf's share of memory bandwidth, B/s.
	DRAMBandwidth float64
	// L3Bandwidth is this leaf's share of shared-cache bandwidth, B/s.
	L3Bandwidth float64
}

// Uncontended returns the contention state of a leaf running alone.
func (m *Machine) Uncontended() Contention {
	return Contention{DRAMBandwidth: m.DRAMStreamBandwidth, L3Bandwidth: m.L3Bandwidth}
}

// Shared returns the contention state with `streams` concurrently
// active leaves.
func (m *Machine) Shared(streams int) Contention {
	if streams < 1 {
		streams = 1
	}
	return Contention{
		DRAMBandwidth: m.StreamBandwidth(streams),
		L3Bandwidth:   m.L3Bandwidth / float64(streams),
	}
}

// LeafCost is the simulator's estimate for executing one leaf.
type LeafCost struct {
	// Duration is the leaf's execution time in seconds, including
	// dispatch overhead.
	Duration float64
	// Utilization is the compute fraction of Duration, feeding the
	// power model.
	Utilization float64
	// DRAMRate and L3Rate are average traffic rates over Duration, B/s.
	DRAMRate float64
	L3Rate   float64
}

// CostLeaf evaluates the roofline cost model for leaf work w.
//
// Compute time is flops over the kernel's achievable rate; memory time
// serializes DRAM, shared-cache and remote (cache-to-cache) transfers at
// their contended bandwidths. Compute and memory overlap perfectly
// (duration is their max — optimistic, but uniformly so for all three
// algorithms), and a fixed dispatch overhead is added, plus a steal
// penalty when the leaf ran outside its preferred worker set.
//
// remoteBytes is decided by the scheduler's affinity tracking: bytes the
// leaf reads that were last written by a different worker. Remote
// traffic also transits the shared cache, so it contributes to L3Rate
// for the power model.
func (m *Machine) CostLeaf(w *task.Work, c Contention, remoteBytes float64, stolen bool) LeafCost {
	computeT := 0.0
	if w.Flops > 0 {
		computeT = w.Flops / (m.PeakFlopsPerCore() * m.Eff(w.Kind))
	}
	memT := 0.0
	if w.DRAMBytes > 0 {
		memT += w.DRAMBytes / c.DRAMBandwidth
	}
	if w.L3Bytes > 0 {
		memT += w.L3Bytes / c.L3Bandwidth
	}
	if remoteBytes > 0 {
		memT += remoteBytes / m.RemoteBandwidth
	}
	busy := computeT
	if memT > busy {
		busy = memT
	}
	dur := busy + m.TaskOverhead
	if stolen {
		dur += m.StealOverhead
	}
	lc := LeafCost{Duration: dur}
	if dur > 0 {
		lc.Utilization = computeT / dur
		lc.DRAMRate = w.DRAMBytes / dur
		lc.L3Rate = (w.L3Bytes + remoteBytes) / dur
	}
	return lc
}

// SerialTime returns the time the whole tree would take on one core
// with no contention — the T₁ baseline for span/work sanity checks.
func (m *Machine) SerialTime(root *task.Node) float64 {
	total := 0.0
	c := m.Uncontended()
	root.Walk(func(n *task.Node) {
		if n.IsLeaf() {
			total += m.CostLeaf(n.Work(), c, 0, false).Duration
		}
	})
	return total
}

// CriticalPath returns the tree's span: the uncontended time of the
// longest Seq-respecting chain. The simulated makespan can never beat
// it.
func (m *Machine) CriticalPath(root *task.Node) float64 {
	c := m.Uncontended()
	var rec func(n *task.Node) float64
	rec = func(n *task.Node) float64 {
		if n.IsLeaf() {
			return m.CostLeaf(n.Work(), c, 0, false).Duration
		}
		if n.IsSeq() {
			sum := 0.0
			for _, ch := range n.Children() {
				sum += rec(ch)
			}
			return sum
		}
		max := 0.0
		for _, ch := range n.Children() {
			if v := rec(ch); v > max {
				max = v
			}
		}
		return max
	}
	return rec(root)
}
