package hw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/task"
)

func TestHaswellValid(t *testing.T) {
	m := HaswellE31225()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cores != 4 {
		t.Fatalf("cores %d", m.Cores)
	}
	// SNB-tuned peak: 3.2 GHz * 8 flops = 25.6 GF/core, 102.4 GF total.
	if got := m.PeakFlopsPerCore(); math.Abs(got-25.6e9) > 1 {
		t.Fatalf("per-core peak %v", got)
	}
	if got := m.PeakFlops(); math.Abs(got-102.4e9) > 1 {
		t.Fatalf("machine peak %v", got)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	base := func() *Machine { return HaswellE31225() }
	mutations := map[string]func(*Machine){
		"zero cores":        func(m *Machine) { m.Cores = 0 },
		"too many cores":    func(m *Machine) { m.Cores = MaxCores + 1 },
		"zero freq":         func(m *Machine) { m.FreqHz = 0 },
		"zero flops":        func(m *Machine) { m.FlopsPerCycle = 0 },
		"zero dram bw":      func(m *Machine) { m.DRAMBandwidth = 0 },
		"stream > total":    func(m *Machine) { m.DRAMStreamBandwidth = m.DRAMBandwidth * 2 },
		"zero l3 bw":        func(m *Machine) { m.L3Bandwidth = 0 },
		"zero remote bw":    func(m *Machine) { m.RemoteBandwidth = 0 },
		"zero l3 size":      func(m *Machine) { m.L3.SizeBytes = 0 },
		"negative overhead": func(m *Machine) { m.TaskOverhead = -1 },
		"bad efficiency":    func(m *Machine) { m.KernelEff[task.KindGEMM] = 1.5 },
	}
	for name, mutate := range mutations {
		m := base()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid machine", name)
		}
	}
}

func TestEffDefaults(t *testing.T) {
	m := HaswellE31225()
	if m.Eff(task.KindGEMM) != 0.92 {
		t.Fatalf("gemm eff %v", m.Eff(task.KindGEMM))
	}
	if m.Eff(task.Kind(42)) != 0.5 {
		t.Fatalf("unknown kind eff %v", m.Eff(task.Kind(42)))
	}
}

func TestAllWorkersMask(t *testing.T) {
	m := HaswellE31225()
	if m.AllWorkers() != 0b1111 {
		t.Fatalf("mask %b", m.AllWorkers())
	}
	m.Cores = 64
	if m.AllWorkers() != ^uint64(0) {
		t.Fatal("64-core mask")
	}
}

func TestStreamBandwidthSharing(t *testing.T) {
	m := HaswellE31225()
	if got := m.StreamBandwidth(1); got != m.DRAMStreamBandwidth {
		t.Fatalf("one stream gets %v", got)
	}
	// With 4 streams the aggregate divides evenly.
	if got := m.StreamBandwidth(4); math.Abs(got-m.DRAMBandwidth/4) > 1 {
		t.Fatalf("four streams get %v", got)
	}
	if got := m.StreamBandwidth(0); got != m.DRAMStreamBandwidth {
		t.Fatalf("zero streams clamps to one: %v", got)
	}
}

func TestStreamBandwidthMonotone(t *testing.T) {
	m := HaswellE31225()
	prev := math.Inf(1)
	for p := 1; p <= 8; p++ {
		bw := m.StreamBandwidth(p)
		if bw > prev {
			t.Fatalf("bandwidth grew with more streams at p=%d", p)
		}
		prev = bw
	}
}

func TestSegmentPowerIdle(t *testing.T) {
	m := HaswellE31225()
	p := m.IdlePower()
	if p.PP0 != 0 {
		t.Fatalf("idle PP0 %v", p.PP0)
	}
	if p.PKG != m.Power.PkgIdle {
		t.Fatalf("idle PKG %v", p.PKG)
	}
	if p.DRAM != m.Power.DRAMIdle {
		t.Fatalf("idle DRAM %v", p.DRAM)
	}
	if p.Total() != p.PKG+p.DRAM {
		t.Fatal("total mismatch")
	}
}

func TestSegmentPowerScalesWithCoresAndUtilization(t *testing.T) {
	m := HaswellE31225()
	full := Activity{Utilization: 1}
	one := m.SegmentPower([]Activity{full})
	four := m.SegmentPower([]Activity{full, full, full, full})
	wantOne := m.Power.PkgIdle + m.Power.CoreIdle + m.Power.CoreDyn
	if math.Abs(one.PKG-wantOne) > 1e-9 {
		t.Fatalf("one-core PKG %v want %v", one.PKG, wantOne)
	}
	if four.PP0 <= 3*one.PP0 {
		t.Fatalf("PP0 not additive: 1->%v 4->%v", one.PP0, four.PP0)
	}
	half := m.SegmentPower([]Activity{{Utilization: 0.5}})
	if half.PP0 >= one.PP0 {
		t.Fatal("lower utilization should draw less")
	}
}

func TestSegmentPowerClampsUtilization(t *testing.T) {
	m := HaswellE31225()
	over := m.SegmentPower([]Activity{{Utilization: 2}})
	exact := m.SegmentPower([]Activity{{Utilization: 1}})
	if over.PP0 != exact.PP0 {
		t.Fatal("utilization not clamped above")
	}
	under := m.SegmentPower([]Activity{{Utilization: -1}})
	zero := m.SegmentPower([]Activity{{Utilization: 0}})
	if under.PP0 != zero.PP0 {
		t.Fatal("utilization not clamped below")
	}
}

func TestSegmentPowerTrafficTerms(t *testing.T) {
	m := HaswellE31225()
	quiet := m.SegmentPower([]Activity{{Utilization: 0.5}})
	loud := m.SegmentPower([]Activity{{Utilization: 0.5, DRAMRate: 10e9, L3Rate: 50e9}})
	if loud.DRAM <= quiet.DRAM {
		t.Fatal("DRAM traffic should raise DRAM plane")
	}
	if loud.PKG <= quiet.PKG {
		t.Fatal("L3 traffic should raise PKG plane")
	}
	wantDRAM := m.Power.DRAMIdle + m.Power.DRAMPerGBs*10
	if math.Abs(loud.DRAM-wantDRAM) > 1e-9 {
		t.Fatalf("DRAM plane %v want %v", loud.DRAM, wantDRAM)
	}
}

func TestCalibrationOpenBLASLikePower(t *testing.T) {
	// A compute-saturated kernel on all four cores should land near the
	// paper's observed 49.13 W average for 4-thread OpenBLAS (Table III).
	m := HaswellE31225()
	act := make([]Activity, 4)
	for i := range act {
		act[i] = Activity{Utilization: 0.95, DRAMRate: 2e9, L3Rate: 10e9}
	}
	p := m.SegmentPower(act)
	if p.Total() < 44 || p.Total() > 55 {
		t.Fatalf("4-core compute-bound total %v W, expected within [44,55]", p.Total())
	}
	one := m.SegmentPower(act[:1])
	if one.Total() < 17 || one.Total() > 24 {
		t.Fatalf("1-core compute-bound total %v W, expected within [17,24]", one.Total())
	}
}

func TestAggregatePowerMatchesSegmentPower(t *testing.T) {
	m := HaswellE31225()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(9)
		act := make([]Activity, n)
		sumU, sumL3, sumDRAM := 0.0, 0.0, 0.0
		for i := range act {
			act[i] = Activity{
				Utilization: rng.Float64()*1.4 - 0.2, // exercise clamping
				L3Rate:      rng.Float64() * 50e9,
				DRAMRate:    rng.Float64() * 10e9,
			}
			sumU += math.Max(0, math.Min(1, act[i].Utilization))
			sumL3 += act[i].L3Rate
			sumDRAM += act[i].DRAMRate
		}
		seg := m.SegmentPower(act)
		agg := m.AggregatePower(n, sumU, sumL3, sumDRAM)
		if math.Abs(seg.PKG-agg.PKG) > 1e-9 || math.Abs(seg.PP0-agg.PP0) > 1e-9 ||
			math.Abs(seg.DRAM-agg.DRAM) > 1e-9 {
			t.Fatalf("trial %d: segment %+v aggregate %+v", trial, seg, agg)
		}
	}
}

func TestClusterScalesAggregates(t *testing.T) {
	node := HaswellE31225()
	c := Cluster(node, 1024)
	if c.Cores != 4096 {
		t.Fatalf("cluster cores %d", c.Cores)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Aggregate resources scale with node count.
	if c.DRAMBandwidth != node.DRAMBandwidth*1024 || c.L3Bandwidth != node.L3Bandwidth*1024 {
		t.Fatal("aggregate bandwidths should scale")
	}
	if c.L3.SizeBytes != node.L3.SizeBytes*1024 {
		t.Fatal("L3 size should scale")
	}
	if c.Power.PkgIdle != node.Power.PkgIdle*1024 || c.Power.DRAMIdle != node.Power.DRAMIdle*1024 {
		t.Fatal("idle powers should scale")
	}
	// Per-core / per-stream quantities do not.
	if c.FreqHz != node.FreqHz || c.DRAMStreamBandwidth != node.DRAMStreamBandwidth ||
		c.Power.CoreDyn != node.Power.CoreDyn || c.TaskOverhead != node.TaskOverhead ||
		c.RemoteBandwidth != node.RemoteBandwidth {
		t.Fatal("per-core quantities should not scale")
	}
	// The node machine is untouched, including its efficiency map.
	c.KernelEff[task.KindGEMM] = 0.1
	if node.KernelEff[task.KindGEMM] != 0.92 {
		t.Fatal("cluster shares the node's KernelEff map")
	}
	if node.Cores != 4 {
		t.Fatal("node mutated")
	}
}

func TestClusterSingleNodeIsIdentity(t *testing.T) {
	node := HaswellE31225()
	c := Cluster(node, 1)
	if c.Cores != node.Cores || c.DRAMBandwidth != node.DRAMBandwidth ||
		c.Power.PkgIdle != node.Power.PkgIdle {
		t.Fatal("1-node cluster should match the node")
	}
}

func TestClusterRejectsNonPositiveNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 nodes")
		}
	}()
	Cluster(HaswellE31225(), 0)
}

func TestLevelFor(t *testing.T) {
	m := HaswellE31225()
	// 1 MB with one sharer: fits in half of 8 MB.
	if m.LevelFor(1<<20, 1) != LevelL3 {
		t.Fatal("1MB should be L3-resident")
	}
	// 6 MB with one sharer exceeds half the LLC.
	if m.LevelFor(6<<20, 1) != LevelDRAM {
		t.Fatal("6MB should spill")
	}
	// 1.5 MB with four sharers exceeds 8MB/4/2 = 1MB.
	if m.LevelFor(1.5*(1<<20), 4) != LevelDRAM {
		t.Fatal("1.5MB/4 sharers should spill")
	}
	if m.LevelFor(1<<19, 0) != LevelL3 {
		t.Fatal("sharers clamp")
	}
}

func TestCostLeafComputeBound(t *testing.T) {
	m := HaswellE31225()
	w := &task.Work{Kind: task.KindGEMM, Flops: 2.56e9} // ~0.109s at 92% of 25.6GF
	lc := m.CostLeaf(w, m.Uncontended(), 0, false)
	want := 2.56e9/(25.6e9*0.92) + m.TaskOverhead
	if math.Abs(lc.Duration-want)/want > 1e-12 {
		t.Fatalf("duration %v want %v", lc.Duration, want)
	}
	if lc.Utilization < 0.99 {
		t.Fatalf("compute-bound utilization %v", lc.Utilization)
	}
}

func TestCostLeafMemoryBound(t *testing.T) {
	m := HaswellE31225()
	w := &task.Work{Kind: task.KindAdd, Flops: 1e6, DRAMBytes: 750e6} // 0.1s at 7.5GB/s
	lc := m.CostLeaf(w, m.Uncontended(), 0, false)
	if lc.Utilization > 0.01 {
		t.Fatalf("memory-bound utilization %v", lc.Utilization)
	}
	if lc.DRAMRate < 7e9 || lc.DRAMRate > 7.5e9 {
		t.Fatalf("DRAM rate %v", lc.DRAMRate)
	}
}

func TestCostLeafContentionSlowsMemory(t *testing.T) {
	m := HaswellE31225()
	w := &task.Work{Kind: task.KindAdd, DRAMBytes: 1e8}
	alone := m.CostLeaf(w, m.Uncontended(), 0, false)
	crowded := m.CostLeaf(w, m.Shared(4), 0, false)
	if crowded.Duration <= alone.Duration {
		t.Fatal("contention should slow a memory-bound leaf")
	}
}

func TestCostLeafRemoteTraffic(t *testing.T) {
	m := HaswellE31225()
	w := &task.Work{Kind: task.KindBaseMul, Flops: 1e5, L3Bytes: 1e5}
	local := m.CostLeaf(w, m.Uncontended(), 0, false)
	remote := m.CostLeaf(w, m.Uncontended(), 5e6, false)
	if remote.Duration <= local.Duration {
		t.Fatal("remote bytes should cost time")
	}
	if remote.L3Rate <= local.L3Rate {
		t.Fatal("remote bytes should transit L3")
	}
}

func TestCostLeafStealOverhead(t *testing.T) {
	m := HaswellE31225()
	w := &task.Work{Kind: task.KindBaseMul, Flops: 1e5}
	home := m.CostLeaf(w, m.Uncontended(), 0, false)
	stolen := m.CostLeaf(w, m.Uncontended(), 0, true)
	if d := stolen.Duration - home.Duration; math.Abs(d-m.StealOverhead) > 1e-15 {
		t.Fatalf("steal penalty %v want %v", d, m.StealOverhead)
	}
}

func TestCostLeafEmptyWork(t *testing.T) {
	m := HaswellE31225()
	lc := m.CostLeaf(&task.Work{Kind: task.KindOverhead}, m.Uncontended(), 0, false)
	if lc.Duration != m.TaskOverhead {
		t.Fatalf("empty leaf duration %v", lc.Duration)
	}
	if lc.Utilization != 0 {
		t.Fatalf("empty leaf utilization %v", lc.Utilization)
	}
}

func TestSerialTimeAndCriticalPath(t *testing.T) {
	m := HaswellE31225()
	mk := func(flops float64) *task.Node {
		return task.Leaf(task.Work{Kind: task.KindGEMM, Flops: flops})
	}
	// Two parallel chains: one long leaf vs two short; span is the max.
	root := task.Par(mk(2e9), task.Seq(mk(0.5e9), mk(0.5e9)))
	serial := m.SerialTime(root)
	span := m.CriticalPath(root)
	if span >= serial {
		t.Fatalf("span %v not under serial %v", span, serial)
	}
	c := m.Uncontended()
	long := m.CostLeaf(&task.Work{Kind: task.KindGEMM, Flops: 2e9}, c, 0, false).Duration
	if math.Abs(span-long) > 1e-12 {
		t.Fatalf("span %v want %v", span, long)
	}
}

func TestPropertySpanNeverExceedsSerial(t *testing.T) {
	m := HaswellE31225()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomCostTree(rng, 4)
		return m.CriticalPath(root) <= m.SerialTime(root)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCostMonotoneInFlops(t *testing.T) {
	m := HaswellE31225()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := rng.Float64() * 1e9
		f2 := f1 + rng.Float64()*1e9
		c := m.Uncontended()
		d1 := m.CostLeaf(&task.Work{Kind: task.KindGEMM, Flops: f1}, c, 0, false).Duration
		d2 := m.CostLeaf(&task.Work{Kind: task.KindGEMM, Flops: f2}, c, 0, false).Duration
		return d2 >= d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPowerMonotoneInActiveCores(t *testing.T) {
	m := HaswellE31225()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		act := make([]Activity, n+1)
		for i := range act {
			act[i] = Activity{Utilization: rng.Float64()}
		}
		fewer := m.SegmentPower(act[:n])
		more := m.SegmentPower(act)
		return more.PP0 >= fewer.PP0 && more.PKG >= fewer.PKG
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomCostTree(rng *rand.Rand, depth int) *task.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return task.Leaf(task.Work{
			Kind:      task.Kind(rng.Intn(4)),
			Flops:     rng.Float64() * 1e8,
			DRAMBytes: rng.Float64() * 1e7,
			L3Bytes:   rng.Float64() * 1e7,
		})
	}
	n := 1 + rng.Intn(3)
	children := make([]*task.Node, n)
	for i := range children {
		children[i] = randomCostTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return task.Seq(children...)
	}
	return task.Par(children...)
}
