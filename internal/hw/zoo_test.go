package hw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZooAllValid(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 4 {
		t.Fatalf("zoo size %d", len(zoo))
	}
	names := map[string]bool{}
	for _, m := range zoo {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if names[m.Name] {
			t.Errorf("duplicate machine name %q", m.Name)
		}
		names[m.Name] = true
	}
	// The paper's machine comes first.
	if zoo[0].Cores != 4 || zoo[0].FlopsPerCycle != 8 {
		t.Fatal("paper machine not first")
	}
}

func TestZooBalancesDiffer(t *testing.T) {
	// Flops-per-byte balance: the HBM node is far below every other
	// machine, and the paper's single-DIMM node is the most
	// compute-heavy of all (which is why it could not reach the
	// Strassen crossover).
	balance := func(m *Machine) float64 { return m.PeakFlops() / m.DRAMBandwidth }
	paper := balance(HaswellE31225())
	for _, m := range Zoo()[1:] {
		if b := balance(m); b >= paper {
			t.Errorf("%s balance %v not below the paper machine's %v", m.Name, b, paper)
		}
	}
	if hbm := balance(BandwidthRichNode()); hbm > 1 {
		t.Errorf("HBM node balance %v should be under 1 flop/byte", hbm)
	}
}

func TestMaxPower(t *testing.T) {
	m := HaswellE31225()
	max := m.MaxPower()
	idle := m.IdlePower().Total()
	if max <= idle {
		t.Fatal("max not above idle")
	}
	// 4 cores at ~9.5 W each over ~12 W of base: roughly 50 W.
	if max < 40 || max > 60 {
		t.Fatalf("paper machine max power %v implausible", max)
	}
}

func TestDeratedForCapNotBinding(t *testing.T) {
	m := HaswellE31225()
	out, err := m.DeratedForCap(m.MaxPower() + 10)
	if err != nil {
		t.Fatal(err)
	}
	if out != m {
		t.Fatal("non-binding cap should return the machine unchanged")
	}
}

func TestDeratedForCapBinding(t *testing.T) {
	m := HaswellE31225()
	cap := 35.0
	out, err := m.DeratedForCap(cap)
	if err != nil {
		t.Fatal(err)
	}
	if out.FreqHz >= m.FreqHz {
		t.Fatalf("frequency not reduced: %v", out.FreqHz)
	}
	if got := out.MaxPower(); got > cap+1e-9 {
		t.Fatalf("derated max power %v exceeds cap %v", got, cap)
	}
	if math.Abs(out.MaxPower()-cap) > 0.01 {
		t.Fatalf("derated max power %v not at the cap %v", out.MaxPower(), cap)
	}
	// Original machine untouched (deep-copied efficiency map too).
	if m.FreqHz != 3.2e9 {
		t.Fatal("original mutated")
	}
	out.KernelEff[0] = 0.1
	if m.KernelEff[0] == 0.1 {
		t.Fatal("efficiency map aliased")
	}
}

func TestDeratedForCapBelowFloor(t *testing.T) {
	m := HaswellE31225()
	if _, err := m.DeratedForCap(5); err == nil {
		t.Fatal("cap below static floor accepted")
	}
}

func TestDeratedForCapBelowDVFSFloor(t *testing.T) {
	// A cap just above the static floor requires a frequency below the
	// DVFS range: infeasible by frequency scaling, only an algorithm
	// change can fit it.
	m := HaswellE31225()
	static := m.MaxPower() - float64(m.Cores)*m.Power.CoreDyn
	if _, err := m.DeratedForCap(static + 0.2); err == nil {
		t.Fatal("cap below the DVFS floor accepted")
	}
}

func TestPropertyDeratedMonotone(t *testing.T) {
	m := HaswellE31225()
	floor := m.MaxPower() - float64(m.Cores)*m.Power.CoreDyn
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := floor + 2 + rng.Float64()*(m.MaxPower()-floor-3)
		c2 := c1 + rng.Float64()*(m.MaxPower()-c1)
		m1, err1 := m.DeratedForCap(c1)
		m2, err2 := m.DeratedForCap(c2)
		if err1 != nil || err2 != nil {
			return false
		}
		// Looser cap → at least as much frequency.
		return m2.FreqHz >= m1.FreqHz-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeratedSlowsCompute(t *testing.T) {
	m := HaswellE31225()
	capped, err := m.DeratedForCap(30)
	if err != nil {
		t.Fatal(err)
	}
	if capped.PeakFlops() >= m.PeakFlops() {
		t.Fatal("derated machine not slower")
	}
	// Memory system untouched: bandwidth-bound work is unaffected.
	if capped.DRAMBandwidth != m.DRAMBandwidth {
		t.Fatal("derating should not change memory bandwidth")
	}
}
