// Package hw models the hardware platform: core counts and clocks,
// cache hierarchy, memory bandwidth under contention, per-kernel
// achievable efficiency, and the per-power-plane power coefficients that
// drive the RAPL emulation.
//
// The paper ran on a single Lenovo TS140 (Intel E3-1225 v3 "Haswell",
// 4 cores @ 3.2 GHz, 8 MB LLC, one DDR3-1600 DIMM) with OpenBLAS built
// for the Sandy Bridge target (8 DP flops/cycle/core). HaswellE31225
// reproduces that platform; the coefficients are calibrated so that the
// simulated watt and second figures land near the paper's published
// tables (see EXPERIMENTS.md for the comparison).
package hw

import (
	"fmt"
	"math"

	"capscale/internal/task"
)

// Cache describes one cache level.
type Cache struct {
	SizeBytes int
	LineBytes int
}

// PowerModel holds the coefficients of the activity-driven power model.
// All values are watts (or watts per GB/s for the traffic terms).
//
// The model:
//
//	PP0  = Σ over active cores (CoreIdle + CoreDyn·utilization)
//	PKG  = PkgIdle + PP0 + L3PerGBs·(L3 traffic rate)
//	DRAM = DRAMIdle + DRAMPerGBs·(DRAM traffic rate)
//
// where a core's utilization is the fraction of its leaf's duration
// spent on compute rather than stalled on memory. This is the mechanism
// behind the paper's central observation: a compute-saturating kernel
// (blocked DGEMM) adds the full CoreDyn per extra thread, while a
// memory-bound kernel (Strassen's additions under contention) adds far
// less, so its power curve flattens as threads grow.
type PowerModel struct {
	PkgIdle    float64 // uncore + fabric, always present while powered
	CoreIdle   float64 // per active core, independent of utilization
	CoreDyn    float64 // per active core at 100% compute utilization
	L3PerGBs   float64 // shared-cache traffic cost
	DRAMIdle   float64 // DIMM background power
	DRAMPerGBs float64 // DRAM traffic cost
}

// Machine is a complete platform description.
type Machine struct {
	Name  string
	Cores int
	// FreqHz is the core clock. The paper disabled frequency scaling in
	// the BIOS, so a single fixed clock is faithful.
	FreqHz float64
	// FlopsPerCycle is the peak double-precision flops per cycle per
	// core for the instruction mix the kernels were compiled for.
	FlopsPerCycle float64

	L1, L2, L3 Cache // L3 is shared by all cores

	// L3Bandwidth is the aggregate shared-cache bandwidth in B/s.
	L3Bandwidth float64
	// DRAMBandwidth is the aggregate sustainable memory bandwidth in B/s.
	DRAMBandwidth float64
	// DRAMStreamBandwidth is the bandwidth a single core can sustain on
	// its own in B/s. Effective per-core bandwidth under P concurrent
	// streams is min(DRAMStreamBandwidth, DRAMBandwidth/P).
	DRAMStreamBandwidth float64
	// RemoteBandwidth is the cache-to-cache (coherence) transfer rate in
	// B/s, charged when a worker consumes data last written by another
	// worker. This is the term communication-avoiding scheduling reduces.
	RemoteBandwidth float64

	// KernelEff maps a task kind to the fraction of peak flops that
	// kernel class achieves when compute-bound.
	KernelEff map[task.Kind]float64

	// TaskOverhead is the fixed dispatch cost per leaf in seconds
	// (OpenMP-task-like). StealOverhead is the additional cost when a
	// leaf is dispatched to a worker outside its affinity-preferred set.
	TaskOverhead  float64
	StealOverhead float64

	Power PowerModel
}

// MaxCores bounds a machine's core count. It matches task.MaxWorkers:
// the affinity mask type can name any core a valid machine has, so the
// simulator is no longer hard-capped at 64 workers.
const MaxCores = task.MaxWorkers

// Validate reports a descriptive error for inconsistent machine
// descriptions. All constructors in this package return validated
// machines; Validate is exported for user-defined platforms.
func (m *Machine) Validate() error {
	switch {
	case m.Cores <= 0 || m.Cores > MaxCores:
		return fmt.Errorf("hw: cores must be in [1,%d], got %d", MaxCores, m.Cores)
	case m.FreqHz <= 0:
		return fmt.Errorf("hw: non-positive frequency %v", m.FreqHz)
	case m.FlopsPerCycle <= 0:
		return fmt.Errorf("hw: non-positive flops/cycle %v", m.FlopsPerCycle)
	case m.DRAMBandwidth <= 0 || m.DRAMStreamBandwidth <= 0:
		return fmt.Errorf("hw: non-positive DRAM bandwidth")
	case m.DRAMStreamBandwidth > m.DRAMBandwidth:
		return fmt.Errorf("hw: single-stream bandwidth %v exceeds aggregate %v",
			m.DRAMStreamBandwidth, m.DRAMBandwidth)
	case m.L3Bandwidth <= 0 || m.RemoteBandwidth <= 0:
		return fmt.Errorf("hw: non-positive cache bandwidth")
	case m.L3.SizeBytes <= 0:
		return fmt.Errorf("hw: non-positive L3 size")
	case m.TaskOverhead < 0 || m.StealOverhead < 0:
		return fmt.Errorf("hw: negative overhead")
	}
	for kind, eff := range m.KernelEff {
		if eff < 0 || eff > 1 {
			return fmt.Errorf("hw: efficiency for %v out of [0,1]: %v", kind, eff)
		}
	}
	return nil
}

// PeakFlopsPerCore returns the per-core peak in flops/s.
func (m *Machine) PeakFlopsPerCore() float64 { return m.FreqHz * m.FlopsPerCycle }

// PeakFlops returns the whole-machine peak in flops/s.
func (m *Machine) PeakFlops() float64 { return m.PeakFlopsPerCore() * float64(m.Cores) }

// Eff returns the achievable fraction of peak for the given kernel
// class, defaulting to 0.5 for unknown kinds.
func (m *Machine) Eff(kind task.Kind) float64 {
	if e, ok := m.KernelEff[kind]; ok {
		return e
	}
	return 0.5
}

// AllWorkers returns the affinity mask with every core's bit set.
func (m *Machine) AllWorkers() uint64 {
	if m.Cores >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(m.Cores)) - 1
}

// StreamBandwidth returns the DRAM bandwidth available to one of
// `streams` concurrently active memory streams.
func (m *Machine) StreamBandwidth(streams int) float64 {
	if streams < 1 {
		streams = 1
	}
	return math.Min(m.DRAMStreamBandwidth, m.DRAMBandwidth/float64(streams))
}

// Activity summarizes what one core is doing during a timeline segment,
// as input to the power model.
type Activity struct {
	// Utilization is the compute fraction of the leaf's duration, in
	// [0,1].
	Utilization float64
	// L3Rate and DRAMRate are the leaf's traffic rates in B/s.
	L3Rate   float64
	DRAMRate float64
}

// PlanePower is instantaneous power per RAPL plane, in watts. PKG
// includes PP0, mirroring real RAPL semantics where the package counter
// covers the cores. For distributed runs the NIC and Switch planes
// carry the interconnect's draw (adapters and fabric switches); they
// are zero on single-node timelines.
type PlanePower struct {
	PKG  float64
	PP0  float64
	DRAM float64
	// NIC is the summed network-adapter draw of the participating
	// nodes; Switch the fabric's switching tiers. Both are RAPL-like
	// planes sampled by the monitor on cluster runs.
	NIC    float64
	Switch float64
}

// Total returns the full-system draw: package + DRAM DIMMs, plus the
// interconnect planes on distributed timelines (PP0 is inside PKG).
func (p PlanePower) Total() float64 { return p.PKG + p.DRAM + p.NIC + p.Switch }

// Add returns the component-wise sum of two plane powers.
func (p PlanePower) Add(q PlanePower) PlanePower {
	return PlanePower{
		PKG: p.PKG + q.PKG, PP0: p.PP0 + q.PP0, DRAM: p.DRAM + q.DRAM,
		NIC: p.NIC + q.NIC, Switch: p.Switch + q.Switch,
	}
}

// Sub returns the component-wise difference of two plane powers.
func (p PlanePower) Sub(q PlanePower) PlanePower {
	return PlanePower{
		PKG: p.PKG - q.PKG, PP0: p.PP0 - q.PP0, DRAM: p.DRAM - q.DRAM,
		NIC: p.NIC - q.NIC, Switch: p.Switch - q.Switch,
	}
}

// SegmentPower evaluates the power model for a set of concurrently
// active cores. Idle cores contribute nothing beyond PkgIdle, matching
// the BIOS configuration in the paper (C-states left enabled for idle
// cores, frequency scaling disabled for active ones).
func (m *Machine) SegmentPower(active []Activity) PlanePower {
	pp0 := 0.0
	l3 := 0.0
	dram := 0.0
	for _, a := range active {
		u := math.Max(0, math.Min(1, a.Utilization))
		pp0 += m.Power.CoreIdle + m.Power.CoreDyn*u
		l3 += a.L3Rate
		dram += a.DRAMRate
	}
	return PlanePower{
		PP0:  pp0,
		PKG:  m.Power.PkgIdle + pp0 + m.Power.L3PerGBs*l3/1e9,
		DRAM: m.Power.DRAMIdle + m.Power.DRAMPerGBs*dram/1e9,
	}
}

// AggregatePower evaluates the power model from pre-aggregated sums
// over the active cores: count active cores, the sum of their (already
// clamped to [0,1]) utilizations, and the sums of their traffic rates.
// It is the O(1) companion to SegmentPower for schedulers that maintain
// the sums incrementally instead of iterating every active core per
// timeline segment — the high-worker-count path of internal/sim.
func (m *Machine) AggregatePower(count int, sumUtil, sumL3, sumDRAM float64) PlanePower {
	pp0 := float64(count)*m.Power.CoreIdle + m.Power.CoreDyn*sumUtil
	return PlanePower{
		PP0:  pp0,
		PKG:  m.Power.PkgIdle + pp0 + m.Power.L3PerGBs*sumL3/1e9,
		DRAM: m.Power.DRAMIdle + m.Power.DRAMPerGBs*sumDRAM/1e9,
	}
}

// IdlePower returns the draw with no active cores (the quiesced state
// between experiment runs).
func (m *Machine) IdlePower() PlanePower { return m.SegmentPower(nil) }

// Cluster models `nodes` copies of a node machine as one flat Machine,
// for shape-only scalability sweeps at cluster scale. Aggregate
// resources (core count, shared-cache size and bandwidth, memory
// bandwidth, idle powers) scale with the node count, while strictly
// per-core and per-stream quantities (clock, flops/cycle, single-stream
// bandwidth, per-core power, task overheads) are unchanged. The
// cache-to-cache RemoteBandwidth deliberately does NOT scale: remote
// reads in a cluster cross the interconnect, and keeping the per-
// transfer rate at the single-node coherence rate is the conservative
// stand-in until a real network model lands.
func Cluster(node *Machine, nodes int) *Machine {
	if nodes < 1 {
		panic(fmt.Sprintf("hw: cluster needs at least 1 node, got %d", nodes))
	}
	c := *node
	f := float64(nodes)
	c.Name = fmt.Sprintf("%s × %d nodes", node.Name, nodes)
	c.Cores = node.Cores * nodes
	c.L3 = Cache{SizeBytes: node.L3.SizeBytes * nodes, LineBytes: node.L3.LineBytes}
	c.L3Bandwidth = node.L3Bandwidth * f
	c.DRAMBandwidth = node.DRAMBandwidth * f
	c.KernelEff = make(map[task.Kind]float64, len(node.KernelEff))
	for k, v := range node.KernelEff {
		c.KernelEff[k] = v
	}
	c.Power.PkgIdle = node.Power.PkgIdle * f
	c.Power.DRAMIdle = node.Power.DRAMIdle * f
	if err := c.Validate(); err != nil {
		panic("hw: cluster machine invalid: " + err.Error())
	}
	return &c
}

// HaswellE31225 returns the paper's test platform: Intel E3-1225 v3,
// 4 cores @ 3.2 GHz, 32 KB/256 KB/8 MB caches, one DDR3-1600 DIMM.
// FlopsPerCycle is 8 because the paper built OpenBLAS for the Sandy
// Bridge target (AVX without FMA).
func HaswellE31225() *Machine {
	m := &Machine{
		Name:          "Intel E3-1225 v3 (Haswell), TARGET=SANDYBRIDGE",
		Cores:         4,
		FreqHz:        3.2e9,
		FlopsPerCycle: 8,
		L1:            Cache{SizeBytes: 32 << 10, LineBytes: 64},
		L2:            Cache{SizeBytes: 256 << 10, LineBytes: 64},
		L3:            Cache{SizeBytes: 8 << 20, LineBytes: 64},
		L3Bandwidth:   96e9,
		// One DDR3-1600 DIMM: 12.8 GB/s peak, ~11 GB/s sustained, a
		// single core streams ~7.5 GB/s.
		DRAMBandwidth:       11e9,
		DRAMStreamBandwidth: 7.5e9,
		RemoteBandwidth:     9e9,
		KernelEff: map[task.Kind]float64{
			task.KindGEMM:     0.92,
			task.KindBaseMul:  0.30,
			task.KindAdd:      0.95, // adds are bandwidth-bound; compute is never the limit
			task.KindCopy:     0.95,
			task.KindOverhead: 0.01,
		},
		TaskOverhead:  1.2e-6,
		StealOverhead: 2.5e-6,
		Power: PowerModel{
			PkgIdle:    9.6,
			CoreIdle:   1.4,
			CoreDyn:    8.1,
			L3PerGBs:   0.012,
			DRAMIdle:   1.1,
			DRAMPerGBs: 0.22,
		},
	}
	if err := m.Validate(); err != nil {
		panic("hw: built-in machine invalid: " + err.Error())
	}
	return m
}

// TrafficLevel says which memory level a block of data streams from.
type TrafficLevel int

const (
	// LevelL3 means the data is expected resident in the shared cache.
	LevelL3 TrafficLevel = iota
	// LevelDRAM means the data spills to memory.
	LevelDRAM
)

// LevelFor classifies where an operand of the given footprint lives
// while `sharers` workers divide the L3: a block fits if it is no
// larger than half of this worker's share of the shared cache (the
// other half holds the concurrently live operands).
func (m *Machine) LevelFor(bytes float64, sharers int) TrafficLevel {
	if sharers < 1 {
		sharers = 1
	}
	share := float64(m.L3.SizeBytes) / float64(sharers) / 2
	if bytes <= share {
		return LevelL3
	}
	return LevelDRAM
}
