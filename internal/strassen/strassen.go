// Package strassen implements the parallel Strassen multiplier the
// paper benchmarks: the classic seven-product recursion of its Eq. 7,
// expressed as task-per-subproblem fork-join parallelism in the style
// of the Barcelona OpenMP Tasks Suite (BOTS), with a dense base-case
// solver below a cutover dimension (the paper found N ≤ 64 optimal and
// used it everywhere; that is the default here).
//
// A Strassen-Winograd variant (15 additions per level instead of 18) is
// provided as the extension the paper's title for the algorithm
// suggests.
//
// Note: the paper's printed Q5 reads (A11 + B12)·B22, which mixes
// operands of A and B; the standard — and only shape-consistent — term
// is (A11 + A12)·B22, which is what this package implements.
package strassen

import (
	"fmt"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/task"
)

// DefaultCutover is the base-case dimension the paper settled on after
// empirical testing.
const DefaultCutover = 64

// Options configures tree construction.
type Options struct {
	// Cutover is the sub-matrix dimension at which recursion reverts to
	// the dense solver; 0 means DefaultCutover.
	Cutover int
	// TaskDepth limits how many recursion levels spawn parallel tasks;
	// deeper levels run sequentially inside their task. 0 means
	// unlimited (a task per subproblem at every level, as BOTS does).
	TaskDepth int
	// Winograd selects the 15-addition Strassen-Winograd recombination
	// instead of the paper's classic 18-addition form.
	Winograd bool
	// WithMath attaches real arithmetic to the leaves and allocates the
	// recursion temporaries. Only use for modest sizes: the temporaries
	// of the whole recursion are allocated up front.
	WithMath bool
}

func (o Options) cutover() int {
	if o.Cutover <= 0 {
		return DefaultCutover
	}
	return o.Cutover
}

// operand is one matrix argument threaded through the recursion: the
// affinity region it lives in and, when real math is on, its data.
type operand struct {
	mat    *matrix.Dense
	region task.RegionID
	n      int
}

func (o operand) quad(i, j int) operand {
	half := o.n / 2
	q := operand{region: o.region, n: half}
	if o.mat != nil {
		q.mat = o.mat.View(i*half, j*half, half, half)
	}
	return q
}

type builder struct {
	m       *hw.Machine
	opt     Options
	workers int
	regions task.Regions
	// pool, when non-nil, supplies the recursion temporaries; temps
	// records every matrix drawn so BuildPooled's release function can
	// recycle them.
	pool  *matrix.Pool
	temps []*matrix.Dense
}

// Build returns the task tree computing c = a·b by parallel Strassen.
// All three matrices must be square with identical dimension. workers
// is the thread count the run will use; it informs the traffic model's
// cache-share estimates.
func Build(m *hw.Machine, c, a, b *matrix.Dense, workers int, opt Options) *task.Node {
	root, _ := build(m, c, a, b, workers, opt, nil)
	return root
}

// BuildPooled is Build with the recursion temporaries (operand sums,
// the seven products per level, padding copies) drawn from pool
// instead of allocated fresh. Call the returned release function after
// the tree has finished executing to recycle them; the tree must not
// run again afterwards, since its scratch storage may be handed to a
// later build. With a long-lived pool, steady-state rebuilds of the
// same problem size allocate no matrix storage at all.
func BuildPooled(m *hw.Machine, c, a, b *matrix.Dense, workers int, opt Options, pool *matrix.Pool) (root *task.Node, release func()) {
	if pool == nil {
		pool = new(matrix.Pool)
	}
	return build(m, c, a, b, workers, opt, pool)
}

func build(m *hw.Machine, c, a, b *matrix.Dense, workers int, opt Options, pool *matrix.Pool) (*task.Node, func()) {
	n := a.Rows()
	if !a.IsSquare() || !b.IsSquare() || !c.IsSquare() || b.Rows() != n || c.Rows() != n {
		panic(fmt.Sprintf("strassen: need equal square matrices, got %dx%d %dx%d %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), c.Rows(), c.Cols()))
	}
	if workers < 1 {
		panic(fmt.Sprintf("strassen: workers %d", workers))
	}
	bd := &builder{m: m, opt: opt, workers: workers, pool: pool}

	// Sizes that do not halve evenly down to the cutover are padded
	// once, up front, to the nearest c·2^k with c ≤ cutover — at most
	// a few percent of extra work for awkward n, instead of collapsing
	// to one dense n³ solve.
	var root *task.Node
	if padded := PaddedSize(n, opt.cutover()); padded != n {
		root = bd.paddedMul(c, a, b, n, padded)
	} else {
		ca := operand{region: bd.regions.New(), n: n}
		cb := operand{region: bd.regions.New(), n: n}
		cc := operand{region: bd.regions.New(), n: n}
		if opt.WithMath {
			ca.mat, cb.mat, cc.mat = a, b, c
		}
		root = bd.mul(cc, ca, cb, 0)
	}
	return root, bd.release
}

// release recycles every temporary the build drew from its pool. It is
// a no-op for unpooled builds.
func (bd *builder) release() {
	if bd.pool == nil || len(bd.temps) == 0 {
		return
	}
	bd.pool.Put(bd.temps...)
	bd.temps = nil
}

// PaddedSize returns the smallest m ≥ n of the form c·2^k with
// c ≤ cutover, so that recursion halves evenly all the way to the
// dense base case. Sizes already ≤ cutover return unchanged.
func PaddedSize(n, cutover int) int {
	if cutover <= 0 {
		cutover = DefaultCutover
	}
	if n <= cutover {
		return n
	}
	k := 0
	for (n+(1<<k)-1)>>k > cutover {
		k++
	}
	return ((n + (1 << k) - 1) >> k) << k
}

// padCopy returns a padded×padded copy of m with zero fill, pooled
// when the build has a pool.
func (bd *builder) padCopy(m *matrix.Dense, padded int) *matrix.Dense {
	if bd.pool == nil {
		return matrix.PadTo(m, padded, padded)
	}
	out := bd.scratch(padded, padded)
	out.Zero()
	matrix.CopyTo(out.View(0, 0, m.Rows(), m.Cols()), m)
	return out
}

// paddedMul wraps the recursion in pad-in/pad-out stages.
func (bd *builder) paddedMul(c, a, b *matrix.Dense, n, padded int) *task.Node {
	var pa, pb, pc *matrix.Dense
	if bd.opt.WithMath {
		pa = bd.padCopy(a, padded)
		pb = bd.padCopy(b, padded)
		// pc is fully written by the recursion before the unpad leaf
		// reads it, so a pooled, non-zeroed buffer is safe.
		pc = bd.scratch(padded, padded)
	}
	ca := operand{mat: pa, region: bd.regions.New(), n: padded}
	cb := operand{mat: pb, region: bd.regions.New(), n: padded}
	cc := operand{mat: pc, region: bd.regions.New(), n: padded}

	copyLeaf := func(label string, reads, writes task.RegionID, run func()) *task.Node {
		w := task.Work{
			Label:       label,
			Kind:        task.KindCopy,
			DRAMBytes:   2 * kernel.Bytes(n, n),
			Reads:       []task.RegionID{reads},
			Writes:      []task.RegionID{writes},
			RegionBytes: kernel.Bytes(n, n),
		}
		if bd.opt.WithMath {
			w.Run = run
		}
		return task.Leaf(w)
	}
	srcA := bd.regions.New()
	srcB := bd.regions.New()
	dstC := bd.regions.New()
	// Padding happened at build time when math is on, so the pad-in
	// closures are no-ops; the leaves carry the traffic accounting.
	padIn := task.Par(
		copyLeaf(fmt.Sprintf("pad A %d->%d", n, padded), srcA, ca.region, func() {}),
		copyLeaf(fmt.Sprintf("pad B %d->%d", n, padded), srcB, cb.region, func() {}),
	)
	padOut := copyLeaf(fmt.Sprintf("unpad C %d->%d", padded, n), cc.region, dstC, func() {
		matrix.CopyTo(c, pc.View(0, 0, n, n))
	})
	alloc := 3 * kernel.Bytes(padded, padded)
	return task.Seq(padIn, bd.mul(cc, ca, cb, 0), padOut).WithAlloc(alloc)
}

// mul builds the subtree computing c = a·b for n×n operands.
func (bd *builder) mul(c, a, b operand, depth int) *task.Node {
	n := a.n
	if n <= bd.opt.cutover() || n%2 != 0 {
		return bd.baseMul(c, a, b)
	}
	if bd.opt.Winograd {
		return bd.winogradNode(c, a, b, depth)
	}
	return bd.classicNode(c, a, b, depth)
}

// temp allocates a recursion temporary of dimension n, drawing from
// the scratch pool when the build has one. Pooled temporaries are not
// zeroed: every temporary is fully written (operand sums by
// AddTo/SubTo, products by kernel.Mul) before it is read.
func (bd *builder) temp(n int) operand {
	t := operand{region: bd.regions.New(), n: n}
	if bd.opt.WithMath {
		t.mat = bd.scratch(n, n)
	}
	return t
}

// scratch returns an r×c matrix from the pool (recorded for release)
// or freshly allocated for unpooled builds.
func (bd *builder) scratch(r, c int) *matrix.Dense {
	if bd.pool == nil {
		return matrix.New(r, c)
	}
	m := bd.pool.Get(r, c)
	bd.temps = append(bd.temps, m)
	return m
}

// addLeaf builds dst = f(srcs) where f is an element-wise combination
// executed by run. addOps is the number of +/− per element.
func (bd *builder) addLeaf(label string, dst operand, addOps int, srcs []operand, run func()) *task.Node {
	n := dst.n
	bytes := kernel.Bytes(n, n)
	traffic := float64(len(srcs)+1) * bytes
	w := task.Work{
		Label:       label,
		Kind:        task.KindAdd,
		Flops:       float64(addOps) * float64(n) * float64(n),
		Writes:      []task.RegionID{dst.region},
		RegionBytes: bytes,
	}
	for _, s := range srcs {
		w.Reads = append(w.Reads, s.region)
	}
	// Large operands stream through DRAM; small ones live in the
	// workers' share of the LLC.
	if bd.m.LevelFor(traffic, bd.workers) == hw.LevelDRAM {
		w.DRAMBytes = traffic
	} else {
		w.L3Bytes = traffic
	}
	if bd.opt.WithMath {
		w.Run = run
	} else {
		w.Run = nil
	}
	return task.Leaf(w)
}

// baseMul is the dense solver leaf below the cutover.
func (bd *builder) baseMul(c, a, b operand) *task.Node {
	n := a.n
	traffic := kernel.MulTraffic(n, n, n)
	w := task.Work{
		Label:       fmt.Sprintf("basemul n%d", n),
		Kind:        task.KindBaseMul,
		Flops:       kernel.MulFlops(n, n, n),
		Reads:       []task.RegionID{a.region, b.region},
		Writes:      []task.RegionID{c.region},
		RegionBytes: kernel.Bytes(n, n),
	}
	if bd.m.LevelFor(traffic, bd.workers) == hw.LevelDRAM {
		w.DRAMBytes = traffic
	} else {
		w.L3Bytes = traffic
	}
	if bd.opt.WithMath {
		cm, am, bm := c.mat, a.mat, b.mat
		w.Run = func() { kernel.Mul(cm, am, bm) }
	}
	return task.Leaf(w)
}

// group wraps subproblem subtrees in Par (task-spawning, BOTS style) or
// Seq when the task-creation depth limit has been passed.
func (bd *builder) group(depth int, children ...*task.Node) *task.Node {
	if bd.opt.TaskDepth > 0 && depth >= bd.opt.TaskDepth {
		return task.Seq(children...)
	}
	return task.Par(children...)
}

// classicNode builds one level of the paper's Eq. 7 recursion:
// 10 operand additions, 7 recursive products, 8 recombination adds.
func (bd *builder) classicNode(c, a, b operand, depth int) *task.Node {
	half := a.n / 2
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)
	c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)

	t := make([]operand, 10)
	q := make([]operand, 7)
	for i := range t {
		t[i] = bd.temp(half)
	}
	for i := range q {
		q[i] = bd.temp(half)
	}

	type addSpec struct {
		dst  operand
		x, y operand
		sub  bool
	}
	pre := []addSpec{
		{t[0], a11, a22, false}, // T1 = A11 + A22
		{t[1], b11, b22, false}, // T2 = B11 + B22
		{t[2], a21, a22, false}, // T3 = A21 + A22
		{t[3], b12, b22, true},  // T4 = B12 − B22
		{t[4], b21, b11, true},  // T5 = B21 − B11
		{t[5], a11, a12, false}, // T6 = A11 + A12
		{t[6], a21, a11, true},  // T7 = A21 − A11
		{t[7], b11, b12, false}, // T8 = B11 + B12
		{t[8], a12, a22, true},  // T9 = A12 − A22
		{t[9], b21, b22, false}, // T10 = B21 + B22
	}
	preLeaves := make([]*task.Node, len(pre))
	for i, s := range pre {
		s := s
		run := func() {}
		if bd.opt.WithMath {
			if s.sub {
				run = func() { matrix.SubTo(s.dst.mat, s.x.mat, s.y.mat) }
			} else {
				run = func() { matrix.AddTo(s.dst.mat, s.x.mat, s.y.mat) }
			}
		}
		preLeaves[i] = bd.addLeaf(fmt.Sprintf("pre%d n%d", i, half), s.dst, 1, []operand{s.x, s.y}, run)
	}

	muls := []*task.Node{
		bd.mul(q[0], t[0], t[1], depth+1), // Q1 = (A11+A22)(B11+B22)
		bd.mul(q[1], t[2], b11, depth+1),  // Q2 = (A21+A22)·B11
		bd.mul(q[2], a11, t[3], depth+1),  // Q3 = A11·(B12−B22)
		bd.mul(q[3], a22, t[4], depth+1),  // Q4 = A22·(B21−B11)
		bd.mul(q[4], t[5], b22, depth+1),  // Q5 = (A11+A12)·B22
		bd.mul(q[5], t[6], t[7], depth+1), // Q6 = (A21−A11)(B11+B12)
		bd.mul(q[6], t[8], t[9], depth+1), // Q7 = (A12−A22)(B21+B22)
	}

	post := []*task.Node{
		// C11 = Q1 + Q4 − Q5 + Q7
		bd.addLeaf(fmt.Sprintf("c11 n%d", half), c11, 3,
			[]operand{q[0], q[3], q[4], q[6]}, func() {
				combine(c11.mat, []*matrix.Dense{q[0].mat, q[3].mat, q[4].mat, q[6].mat}, []float64{1, 1, -1, 1})
			}),
		// C12 = Q3 + Q5
		bd.addLeaf(fmt.Sprintf("c12 n%d", half), c12, 1,
			[]operand{q[2], q[4]}, func() {
				combine(c12.mat, []*matrix.Dense{q[2].mat, q[4].mat}, []float64{1, 1})
			}),
		// C21 = Q2 + Q4
		bd.addLeaf(fmt.Sprintf("c21 n%d", half), c21, 1,
			[]operand{q[1], q[3]}, func() {
				combine(c21.mat, []*matrix.Dense{q[1].mat, q[3].mat}, []float64{1, 1})
			}),
		// C22 = Q1 − Q2 + Q3 + Q6
		bd.addLeaf(fmt.Sprintf("c22 n%d", half), c22, 3,
			[]operand{q[0], q[1], q[2], q[5]}, func() {
				combine(c22.mat, []*matrix.Dense{q[0].mat, q[1].mat, q[2].mat, q[5].mat}, []float64{1, -1, 1, 1})
			}),
	}

	alloc := 17 * kernel.Bytes(half, half) // T1..T10 + Q1..Q7
	return task.Seq(
		bd.group(depth, preLeaves...),
		bd.group(depth, muls...),
		bd.group(depth, post...),
	).WithAlloc(alloc)
}

// winogradNode builds one level of the Strassen-Winograd recursion
// (8 operand additions, 7 products, 7 recombination adds).
func (bd *builder) winogradNode(c, a, b operand, depth int) *task.Node {
	half := a.n / 2
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)
	c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)

	s := make([]operand, 8)
	p := make([]operand, 7)
	for i := range s {
		s[i] = bd.temp(half)
	}
	for i := range p {
		p[i] = bd.temp(half)
	}

	type addSpec struct {
		dst  operand
		x, y operand
		sub  bool
	}
	pre := []addSpec{
		{s[0], a21, a22, false}, // S1 = A21 + A22
		{s[1], s[0], a11, true}, // S2 = S1 − A11   (depends on S1)
		{s[2], a11, a21, true},  // S3 = A11 − A21
		{s[3], a12, s[1], true}, // S4 = A12 − S2   (depends on S2)
		{s[4], b12, b11, true},  // S5 = B12 − B11
		{s[5], b22, s[4], true}, // S6 = B22 − S5   (depends on S5)
		{s[6], b22, b12, true},  // S7 = B22 − B12
		{s[7], s[5], b21, true}, // S8 = S6 − B21   (depends on S6)
	}
	leaf := func(i int) *task.Node {
		sp := pre[i]
		run := func() {}
		if bd.opt.WithMath {
			if sp.sub {
				run = func() { matrix.SubTo(sp.dst.mat, sp.x.mat, sp.y.mat) }
			} else {
				run = func() { matrix.AddTo(sp.dst.mat, sp.x.mat, sp.y.mat) }
			}
		}
		return bd.addLeaf(fmt.Sprintf("wpre%d n%d", i, half), sp.dst, 1, []operand{sp.x, sp.y}, run)
	}
	// Chains respect the S-dependencies; independent chains run in
	// parallel.
	preTree := bd.group(depth,
		task.Seq(leaf(0), leaf(1), leaf(3)), // S1 → S2 → S4
		leaf(2),                             // S3
		task.Seq(leaf(4), leaf(5), leaf(7)), // S5 → S6 → S8
		leaf(6),                             // S7
	)

	muls := []*task.Node{
		bd.mul(p[0], s[1], s[5], depth+1), // M1 = S2·S6
		bd.mul(p[1], a11, b11, depth+1),   // M2 = A11·B11
		bd.mul(p[2], a12, b21, depth+1),   // M3 = A12·B21
		bd.mul(p[3], s[2], s[6], depth+1), // M4 = S3·S7
		bd.mul(p[4], s[0], s[4], depth+1), // M5 = S1·S5
		bd.mul(p[5], s[3], b22, depth+1),  // M6 = S4·B22
		bd.mul(p[6], a22, s[7], depth+1),  // M7 = A22·S8
	}

	// Recombination: V1 = M1+M2, V2 = V1+M4,
	// C11 = M2+M3, C12 = V1+M5+M6, C21 = V2−M7, C22 = V2+M5.
	v1 := bd.temp(half)
	v2 := bd.temp(half)
	postTree := task.Seq(
		bd.group(depth,
			bd.addLeaf(fmt.Sprintf("wv1 n%d", half), v1, 1, []operand{p[0], p[1]}, func() {
				combine(v1.mat, []*matrix.Dense{p[0].mat, p[1].mat}, []float64{1, 1})
			}),
			bd.addLeaf(fmt.Sprintf("wc11 n%d", half), c11, 1, []operand{p[1], p[2]}, func() {
				combine(c11.mat, []*matrix.Dense{p[1].mat, p[2].mat}, []float64{1, 1})
			}),
		),
		bd.group(depth,
			bd.addLeaf(fmt.Sprintf("wv2 n%d", half), v2, 1, []operand{v1, p[3]}, func() {
				combine(v2.mat, []*matrix.Dense{v1.mat, p[3].mat}, []float64{1, 1})
			}),
			bd.addLeaf(fmt.Sprintf("wc12 n%d", half), c12, 2, []operand{v1, p[4], p[5]}, func() {
				combine(c12.mat, []*matrix.Dense{v1.mat, p[4].mat, p[5].mat}, []float64{1, 1, 1})
			}),
		),
		bd.group(depth,
			bd.addLeaf(fmt.Sprintf("wc21 n%d", half), c21, 1, []operand{v2, p[6]}, func() {
				combine(c21.mat, []*matrix.Dense{v2.mat, p[6].mat}, []float64{1, -1})
			}),
			bd.addLeaf(fmt.Sprintf("wc22 n%d", half), c22, 1, []operand{v2, p[4]}, func() {
				combine(c22.mat, []*matrix.Dense{v2.mat, p[4].mat}, []float64{1, 1})
			}),
		),
	)

	alloc := 17 * kernel.Bytes(half, half) // S1..S8, M1..M7, V1, V2
	return task.Seq(preTree, bd.group(depth, muls...), postTree).WithAlloc(alloc)
}

// combine stores Σ coeff[i]·src[i] into dst. It tolerates nil matrices
// (accounting-only trees never call it).
func combine(dst *matrix.Dense, srcs []*matrix.Dense, coeffs []float64) {
	if dst == nil {
		return
	}
	rows, cols := dst.Rows(), dst.Cols()
	for i := 0; i < rows; i++ {
		dr := dst.Row(i)
		for j := 0; j < cols; j++ {
			v := 0.0
			for k, s := range srcs {
				v += coeffs[k] * s.Row(i)[j]
			}
			dr[j] = v
		}
	}
}

// MulFlopsTotal returns the closed-form multiplication flops of the
// recursion on an n×n problem with the given cutover: 7^k · 2·n0³ with
// n0 the base-case dimension actually reached.
func MulFlopsTotal(n, cutover int) float64 {
	if cutover <= 0 {
		cutover = DefaultCutover
	}
	levels := 0
	for n > cutover && n%2 == 0 {
		n /= 2
		levels++
	}
	f := kernel.MulFlops(n, n, n)
	for i := 0; i < levels; i++ {
		f *= 7
	}
	return f
}

// AddFlopsTotal returns the closed-form addition flops: per level,
// classic Strassen performs 18 element-wise add-operations on (n/2)²
// elements (10 operand sums + 8 in the recombination), Winograd 15.
func AddFlopsTotal(n, cutover int, winograd bool) float64 {
	if cutover <= 0 {
		cutover = DefaultCutover
	}
	perLevel := 18.0
	if winograd {
		perLevel = 15.0
	}
	total := 0.0
	nodes := 1.0
	for n > cutover && n%2 == 0 {
		half := float64(n / 2)
		total += nodes * perLevel * half * half
		nodes *= 7
		n /= 2
	}
	return total
}
