package strassen

import (
	"math/rand"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/task"
)

// BuildPooled must compute exactly what Build computes, for every
// variant and for sizes that take the padded path.
func TestBuildPooledMatchesBuild(t *testing.T) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(21))
	var pool matrix.Pool
	for _, tc := range []struct {
		n   int
		opt Options
	}{
		{64, Options{Cutover: 8, WithMath: true}},
		{64, Options{Cutover: 8, Winograd: true, WithMath: true}},
		{96, Options{Cutover: 16, WithMath: true}},  // 96 -> padded
		{100, Options{Cutover: 16, WithMath: true}}, // padded, odd fill
	} {
		a := matrix.Rand(rng, tc.n, tc.n)
		b := matrix.Rand(rng, tc.n, tc.n)

		want := matrix.New(tc.n, tc.n)
		task.RunSerial(Build(m, want, a, b, 2, tc.opt))

		got := matrix.New(tc.n, tc.n)
		root, release := BuildPooled(m, got, a, b, 2, tc.opt, &pool)
		task.RunSerial(root)
		release()

		if !matrix.Equal(got, want) {
			t.Errorf("n=%d winograd=%v: pooled result differs by %v",
				tc.n, tc.opt.Winograd, matrix.MaxAbsDiff(got, want))
		}
	}
}

// Rebuilding the same problem must reuse the released scratch: the
// second build draws every temporary from the pool, and stale contents
// from the first run must not leak into the second result.
func TestBuildPooledReusesScratch(t *testing.T) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(22))
	n := 64
	opt := Options{Cutover: 8, WithMath: true}
	var pool matrix.Pool

	a1, b1 := matrix.Rand(rng, n, n), matrix.Rand(rng, n, n)
	c1 := matrix.New(n, n)
	root, release := BuildPooled(m, c1, a1, b1, 2, opt, &pool)
	task.RunSerial(root)
	release()
	cached := pool.Len()
	if cached == 0 {
		t.Fatal("release returned nothing to the pool")
	}

	// Different operands, same shape: all scratch comes from the pool.
	a2, b2 := matrix.Rand(rng, n, n), matrix.Rand(rng, n, n)
	c2 := matrix.New(n, n)
	root, release = BuildPooled(m, c2, a2, b2, 2, opt, &pool)
	if pool.Len() != 0 {
		t.Fatalf("second build left %d of %d cached temporaries unused", pool.Len(), cached)
	}
	task.RunSerial(root)

	want := matrix.New(n, n)
	matrix.MulNaive(want, a2, b2)
	if !matrix.AlmostEqual(c2, want, 1e-10) {
		t.Fatalf("recycled-scratch result differs by %v", matrix.MaxAbsDiff(c2, want))
	}
	release()
	if pool.Len() != cached {
		t.Fatalf("pool holds %d after second release, want %d", pool.Len(), cached)
	}
}

// Release after an accounting-only build (no math) is a harmless no-op.
func TestBuildPooledAccountingOnly(t *testing.T) {
	m := hw.HaswellE31225()
	n := 128
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	var pool matrix.Pool
	root, release := BuildPooled(m, c, a, b, 2, Options{}, &pool)
	if root == nil {
		t.Fatal("nil root")
	}
	release()
	if pool.Len() != 0 {
		t.Fatalf("accounting-only build pooled %d matrices", pool.Len())
	}
}
