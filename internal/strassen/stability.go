package strassen

import (
	"math/rand"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/task"
)

// Numerical stability instrumentation. The paper notes that "Strassen
// has been known to produce differences in the numerical stability as
// compared with traditional techniques", citing Higham's analysis that
// the effect is understood and bounded: the error bound grows by a
// constant factor per recursion level (‖E‖ ≤ c·n^{log₂12}·u against
// the conventional n²·u), so shallower recursion (larger cutover) is
// more accurate. MeasureError makes that trade quantifiable on this
// implementation.

// ErrorReport compares one Strassen configuration against the
// conventional product.
type ErrorReport struct {
	N        int
	Cutover  int
	Levels   int     // recursion depth actually taken
	MaxAbs   float64 // max |strassen − conventional| element error
	Relative float64 // MaxAbs scaled by the result's max magnitude
}

// MeasureError multiplies two deterministic random [-1,1) matrices
// with the given options and reports the element-wise error against
// kernel.Mul (the conventional product).
func MeasureError(n int, opt Options, seed int64) ErrorReport {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)

	want := matrix.New(n, n)
	kernel.Mul(want, a, b)

	got := matrix.New(n, n)
	opt.WithMath = true
	// The cost model never affects the Run closures; any valid machine
	// serves for an accuracy measurement.
	root := Build(hw.HaswellE31225(), got, a, b, 1, opt)
	task.RunSerial(root)

	levels := 0
	for v := n; v > opt.cutover() && v%2 == 0; v /= 2 {
		levels++
	}
	maxAbs := matrix.MaxAbsDiff(got, want)
	scale := want.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	return ErrorReport{
		N:        n,
		Cutover:  opt.cutover(),
		Levels:   levels,
		MaxAbs:   maxAbs,
		Relative: maxAbs / scale,
	}
}
