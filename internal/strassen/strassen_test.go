package strassen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/task"
)

func machine() *hw.Machine { return hw.HaswellE31225() }

func mulVia(t *testing.T, n, workers int, opt Options) (*matrix.Dense, *matrix.Dense) {
	t.Helper()
	m := machine()
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(workers)))
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	c := matrix.New(n, n)
	opt.WithMath = true
	root := Build(m, c, a, b, workers, opt)
	sim.Run(m, root, sim.Config{Workers: workers, VerifyNumerics: true})
	want := matrix.New(n, n)
	matrix.MulNaive(want, a, b)
	return c, want
}

func TestClassicMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128, 256} {
		got, want := mulVia(t, n, 3, Options{Cutover: 8})
		if !matrix.AlmostEqual(got, want, 1e-10) {
			t.Fatalf("n=%d: classic Strassen differs by %v", n, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestWinogradMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 128, 256} {
		got, want := mulVia(t, n, 3, Options{Cutover: 8, Winograd: true})
		if !matrix.AlmostEqual(got, want, 1e-10) {
			t.Fatalf("n=%d: Winograd differs by %v", n, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestDefaultCutoverUsed(t *testing.T) {
	// At n = 64 the default options must produce a single dense leaf.
	m := machine()
	n := 64
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, 4, Options{})
	stats := task.Collect(root)
	if stats.Leaves != 1 {
		t.Fatalf("n=64 built %d leaves, want 1 (cutover)", stats.Leaves)
	}
	if stats.FlopsByKind[task.KindBaseMul] != kernel.MulFlops(n, n, n) {
		t.Fatal("base case flops wrong")
	}
}

func TestOddSizeFallsBackToDense(t *testing.T) {
	got, want := mulVia(t, 63, 2, Options{Cutover: 8})
	if !matrix.AlmostEqual(got, want, 1e-10) {
		t.Fatal("odd dimension result wrong")
	}
	// 126 = 2·63: one split then odd base cases.
	got, want = mulVia(t, 126, 2, Options{Cutover: 8})
	if !matrix.AlmostEqual(got, want, 1e-10) {
		t.Fatal("半-odd dimension result wrong")
	}
}

func TestBuildPanics(t *testing.T) {
	m := machine()
	if err := catchPanic(func() {
		Build(m, matrix.New(4, 4), matrix.New(4, 4), matrix.New(4, 8), 2, Options{})
	}); err == false {
		t.Fatal("non-square operand accepted")
	}
	if err := catchPanic(func() {
		Build(m, matrix.New(4, 4), matrix.New(4, 4), matrix.New(4, 4), 0, Options{})
	}); err == false {
		t.Fatal("zero workers accepted")
	}
}

func catchPanic(f func()) (panicked bool) {
	defer func() { panicked = recover() != nil }()
	f()
	return
}

func TestMulFlopAccountingMatchesClosedForm(t *testing.T) {
	m := machine()
	for _, n := range []int{64, 128, 256, 512} {
		a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		stats := task.Collect(Build(m, c, a, b, 4, Options{}))
		if got, want := stats.FlopsByKind[task.KindBaseMul], MulFlopsTotal(n, DefaultCutover); got != want {
			t.Fatalf("n=%d mul flops %v want %v", n, got, want)
		}
		if got, want := stats.FlopsByKind[task.KindAdd], AddFlopsTotal(n, DefaultCutover, false); got != want {
			t.Fatalf("n=%d add flops %v want %v", n, got, want)
		}
	}
}

func TestWinogradFlopAccounting(t *testing.T) {
	m := machine()
	n := 256
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	stats := task.Collect(Build(m, c, a, b, 4, Options{Winograd: true}))
	if got, want := stats.FlopsByKind[task.KindAdd], AddFlopsTotal(n, DefaultCutover, true); got != want {
		t.Fatalf("winograd add flops %v want %v", got, want)
	}
	classic := task.Collect(Build(m, c, a, b, 4, Options{}))
	if stats.FlopsByKind[task.KindAdd] >= classic.FlopsByKind[task.KindAdd] {
		t.Fatal("Winograd should perform fewer additions than classic")
	}
}

func TestStrassenBeatsCubicFlopCount(t *testing.T) {
	// The whole point: fewer multiply flops than 2n³ for n well above
	// the cutover.
	n := 4096
	if MulFlopsTotal(n, 64) >= kernel.MulFlops(n, n, n) {
		t.Fatal("Strassen did not reduce multiplication count")
	}
	// 7/8 per level, 6 levels: (7/8)^6 ≈ 0.4488.
	ratio := MulFlopsTotal(n, 64) / kernel.MulFlops(n, n, n)
	if math.Abs(ratio-math.Pow(7.0/8.0, 6)) > 1e-12 {
		t.Fatalf("mul ratio %v want %v", ratio, math.Pow(7.0/8.0, 6))
	}
}

func TestLeafCountClosedForm(t *testing.T) {
	// Levels k: base muls 7^k; add leaves: classic has 14 per internal
	// node (10 pre + 4 post).
	m := machine()
	n := 512
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	stats := task.Collect(Build(m, c, a, b, 4, Options{}))
	k := 3 // 512 -> 256 -> 128 -> 64
	muls := int(math.Pow(7, float64(k)))
	internal := (muls - 1) / 6 // 1 + 7 + 49
	wantLeaves := muls + internal*14
	if stats.Leaves != wantLeaves {
		t.Fatalf("leaves %d want %d", stats.Leaves, wantLeaves)
	}
}

func TestAllocPeakGrowsWithProblem(t *testing.T) {
	m := machine()
	build := func(n int) task.Stats {
		a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		return task.Collect(Build(m, c, a, b, 4, Options{}))
	}
	s512, s1024 := build(512), build(1024)
	if s1024.AllocPeak <= s512.AllocPeak {
		t.Fatal("alloc peak should grow with problem size")
	}
	// Top level alone needs 17·(n/2)²·8 bytes.
	if min := 17 * kernel.Bytes(512, 512); s1024.AllocPeak < min {
		t.Fatalf("1024 alloc peak %v below single-level need %v", s1024.AllocPeak, min)
	}
}

func TestTaskDepthLimitsParallelism(t *testing.T) {
	m := machine()
	n := 256
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	unlimited := Build(m, c, a, b, 4, Options{Cutover: 32})
	limited := Build(m, c, a, b, 4, Options{Cutover: 32, TaskDepth: 1})
	// Same leaves, different shapes: the limited tree has a longer span.
	su, sl := task.Collect(unlimited), task.Collect(limited)
	if su.Leaves != sl.Leaves {
		t.Fatalf("leaf counts differ: %d vs %d", su.Leaves, sl.Leaves)
	}
	if m.CriticalPath(limited) <= m.CriticalPath(unlimited) {
		t.Fatal("depth-limited tree should have longer critical path")
	}
}

func TestSimulatedSpeedupReasonable(t *testing.T) {
	m := machine()
	n := 1024
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	mk := func(workers int) *sim.Result {
		root := Build(m, c, a, b, workers, Options{})
		return sim.Run(m, root, sim.Config{Workers: workers})
	}
	t1, t4 := mk(1).Makespan, mk(4).Makespan
	speedup := t1 / t4
	if speedup < 1.8 || speedup > 4.05 {
		t.Fatalf("4-thread Strassen speedup %v outside plausible range", speedup)
	}
}

func TestSimulatedPowerFlatterThanBLASLike(t *testing.T) {
	// Strassen's power should grow much less from 1 to 4 threads than a
	// compute-saturated workload's (the paper's central contrast).
	m := machine()
	n := 2048
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	p1 := sim.Run(m, Build(m, c, a, b, 1, Options{}), sim.Config{Workers: 1}).AvgPowerTotal()
	p4 := sim.Run(m, Build(m, c, a, b, 4, Options{}), sim.Config{Workers: 4}).AvgPowerTotal()
	growth := p4 / p1
	if growth > 2.0 {
		t.Fatalf("Strassen power grew %vx from 1 to 4 threads; expected sublinear", growth)
	}
	if p4 <= p1 {
		t.Fatalf("more threads should still draw more power: %v -> %v", p1, p4)
	}
}

func TestCommunicationChargedWithManyWorkers(t *testing.T) {
	m := machine()
	n := 512
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	res4 := sim.Run(m, Build(m, c, a, b, 4, Options{}), sim.Config{Workers: 4})
	res1 := sim.Run(m, Build(m, c, a, b, 1, Options{}), sim.Config{Workers: 1})
	if res1.RemoteBytes != 0 {
		t.Fatalf("single worker charged %v remote bytes", res1.RemoteBytes)
	}
	if res4.RemoteBytes == 0 {
		t.Fatal("task-parallel Strassen on 4 workers charged no communication")
	}
}

func TestPropertyClassicMatchesNaiveExactInts(t *testing.T) {
	// With small integer matrices Strassen is exact, so equality is
	// strict.
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5)) // 2..32
		workers := 1 + rng.Intn(4)
		a := matrix.RandInts(rng, n, n, 3)
		b := matrix.RandInts(rng, n, n, 3)
		c := matrix.New(n, n)
		root := Build(m, c, a, b, workers, Options{Cutover: 2, WithMath: true})
		sim.Run(m, root, sim.Config{Workers: workers, VerifyNumerics: true})
		want := matrix.New(n, n)
		matrix.MulNaive(want, a, b)
		return matrix.Equal(c, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWinogradMatchesNaiveExactInts(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		workers := 1 + rng.Intn(4)
		a := matrix.RandInts(rng, n, n, 3)
		b := matrix.RandInts(rng, n, n, 3)
		c := matrix.New(n, n)
		root := Build(m, c, a, b, workers, Options{Cutover: 2, Winograd: true, WithMath: true})
		sim.Run(m, root, sim.Config{Workers: workers, VerifyNumerics: true})
		want := matrix.New(n, n)
		matrix.MulNaive(want, a, b)
		return matrix.Equal(c, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFlopClosedFormsConsistent(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (6 + rng.Intn(4)) // 64..512
		cut := []int{16, 32, 64}[rng.Intn(3)]
		a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		stats := task.Collect(Build(m, c, a, b, 2, Options{Cutover: cut}))
		return stats.FlopsByKind[task.KindBaseMul] == MulFlopsTotal(n, cut) &&
			stats.FlopsByKind[task.KindAdd] == AddFlopsTotal(n, cut, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
