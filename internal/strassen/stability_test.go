package strassen

import "testing"

func TestMeasureErrorBasics(t *testing.T) {
	r := MeasureError(256, Options{Cutover: 32}, 1)
	if r.N != 256 || r.Cutover != 32 || r.Levels != 3 {
		t.Fatalf("report %+v", r)
	}
	if r.MaxAbs <= 0 {
		t.Fatal("Strassen agreed with conventional to the last bit — implausible")
	}
	if r.Relative > 1e-12 {
		t.Fatalf("relative error %v far too large for n=256", r.Relative)
	}
}

func TestErrorGrowsWithRecursionDepth(t *testing.T) {
	// Higham's bound: each recursion level multiplies the error
	// constant. Deeper recursion (smaller cutover) on the same data
	// must not be more accurate; across a wide depth difference it
	// must be strictly worse.
	shallow := MeasureError(512, Options{Cutover: 256}, 7) // 1 level
	deep := MeasureError(512, Options{Cutover: 8}, 7)      // 6 levels
	if deep.Levels <= shallow.Levels {
		t.Fatalf("levels %d vs %d", deep.Levels, shallow.Levels)
	}
	if deep.MaxAbs <= shallow.MaxAbs {
		t.Fatalf("deep recursion error %v not above shallow %v", deep.MaxAbs, shallow.MaxAbs)
	}
}

func TestErrorWellUnderStabilityBoundScale(t *testing.T) {
	// Even at full depth the error stays in well-conditioned range —
	// the paper's "these issues have been well understood" point.
	r := MeasureError(512, Options{Cutover: 8}, 3)
	if r.Relative > 1e-11 {
		t.Fatalf("relative error %v beyond reasonable for [-1,1) inputs", r.Relative)
	}
}

func TestWinogradErrorComparableToClassic(t *testing.T) {
	classic := MeasureError(256, Options{Cutover: 16}, 5)
	wino := MeasureError(256, Options{Cutover: 16, Winograd: true}, 5)
	// Winograd's constant is slightly worse; both stay the same order.
	if wino.MaxAbs > classic.MaxAbs*100 || classic.MaxAbs > wino.MaxAbs*100 {
		t.Fatalf("classic %v vs winograd %v differ by orders of magnitude", classic.MaxAbs, wino.MaxAbs)
	}
}
