package strassen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/task"
)

func TestPaddedSize(t *testing.T) {
	cases := []struct{ n, cut, want int }{
		{64, 64, 64},     // at the cutover: no padding
		{63, 64, 63},     // below the cutover: untouched
		{128, 64, 128},   // already c·2^k
		{2050, 64, 2112}, // 33·64
		{100, 8, 112},    // 7·16 (13·8 would leave c=13 above the cutover)
		{65, 64, 66},     // 33·2
		{4096, 64, 4096},
	}
	for _, c := range cases {
		if got := PaddedSize(c.n, c.cut); got != c.want {
			t.Errorf("PaddedSize(%d,%d) = %d want %d", c.n, c.cut, got, c.want)
		}
	}
}

func TestPropertyPaddedSizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5000)
		cut := []int{8, 16, 32, 64}[rng.Intn(4)]
		m := PaddedSize(n, cut)
		if m < n {
			return false
		}
		// Overhead bounded: at most cutover·2^k − n < n + cut·2^... in
		// practice under 2·cut of slack per the construction.
		if n > cut && m >= 2*n {
			return false
		}
		// The result halves evenly down to ≤ cut.
		v := m
		for v > cut {
			if v%2 != 0 {
				return false
			}
			v /= 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaddedBuildAvoidsDenseCollapse(t *testing.T) {
	// Before padding, an awkward size above the cutover became ONE
	// dense n³ leaf; now it must recurse with bounded overhead.
	m := hw.HaswellE31225()
	n := 2050
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	stats := task.Collect(Build(m, c, a, b, 4, Options{}))
	if stats.Leaves < 1000 {
		t.Fatalf("padded build produced only %d leaves", stats.Leaves)
	}
	dense := kernel.MulFlops(n, n, n)
	if stats.Flops >= dense {
		t.Fatalf("padded flops %v not below dense %v", stats.Flops, dense)
	}
	// Overhead vs the next power-of-two-friendly size (2112).
	ideal := MulFlopsTotal(2112, DefaultCutover)
	if stats.FlopsByKind[task.KindBaseMul] != ideal {
		t.Fatalf("padded mul flops %v want %v", stats.FlopsByKind[task.KindBaseMul], ideal)
	}
}

func TestPaddedNumericsOddSizes(t *testing.T) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{33, 50, 100, 150} {
		a := matrix.Rand(rng, n, n)
		b := matrix.Rand(rng, n, n)
		c := matrix.New(n, n)
		root := Build(m, c, a, b, 2, Options{Cutover: 8, WithMath: true})
		sim.Run(m, root, sim.Config{Workers: 2, VerifyNumerics: true})
		want := matrix.New(n, n)
		matrix.MulNaive(want, a, b)
		if !matrix.AlmostEqual(c, want, 1e-10) {
			t.Fatalf("n=%d padded result differs by %v", n, matrix.MaxAbsDiff(c, want))
		}
	}
}

func TestPaddedWinogradNumerics(t *testing.T) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(22))
	n := 70
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	c := matrix.New(n, n)
	root := Build(m, c, a, b, 3, Options{Cutover: 8, Winograd: true, WithMath: true})
	sim.Run(m, root, sim.Config{Workers: 3, VerifyNumerics: true})
	want := matrix.New(n, n)
	matrix.MulNaive(want, a, b)
	if !matrix.AlmostEqual(c, want, 1e-10) {
		t.Fatal("padded Winograd wrong")
	}
}
