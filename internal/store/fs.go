// Package store holds the fingerprint-keyed JSONL result store shared
// by the checkpoint journal (internal/workload) and the sweep service
// (internal/serve). Everything goes through an injectable filesystem
// interface so the crash and fault tests (internal/faults.FaultFS) can
// exercise torn writes, I/O errors and simulated power loss against
// the exact code paths production runs on.
//
// The package provides three layers:
//
//   - FS/File: the filesystem seam. Resolve(nil) returns the real OS
//     filesystem, so a nil FS everywhere means "no injection, zero
//     overhead" — the same contract the fault injector established.
//   - Lease: on-disk claim files (owner + monotonic epoch + TTL) that
//     let N replicas share one store directory. See lease.go.
//   - Journal: append-only JSONL files written with explicit fsync
//     barriers and atomic (temp+fsync+rename) compaction. See
//     journal.go.
package store

import (
	"io/fs"
	"os"
	"strconv"
	"sync/atomic"
)

// File is the subset of *os.File the store writes through. Sync is the
// durability barrier: data written but not yet synced is exactly what a
// crash may lose (or tear).
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem seam. The real implementation is OS(); the
// fault-injecting one lives in internal/faults. All paths are plain
// slash-joined strings, same as the os package.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
}

// osFS is the passthrough to the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

var theOS FS = osFS{}

// OS returns the real filesystem.
func OS() FS { return theOS }

// Resolve maps the nil FS to the real filesystem, preserving the
// "nil means no injection" contract at every call site.
func Resolve(fsys FS) FS {
	if fsys == nil {
		return theOS
	}
	return fsys
}

// tmpSeq makes temp names unique within a process without consulting
// the clock or a global RNG (keeps fault-FS runs deterministic).
var tmpSeq atomic.Uint64

// tempPath returns a sibling temp name for path. The suffix never
// matches the store's journal extension, so half-written temps are
// invisible to Fingerprints and harmless as debris after a real kill.
func tempPath(path string) string {
	return path + ".tmp-" + strconv.Itoa(os.Getpid()) + "-" +
		strconv.FormatUint(tmpSeq.Add(1), 10)
}
