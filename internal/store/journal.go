package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Header is the first line of every journal: the layout version plus
// the configuration fingerprint of the results it holds. Field order
// matches the original checkpoint header byte-for-byte.
type Header struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// ErrJournalClosed is returned by Append after Close.
var ErrJournalClosed = errors.New("store: journal closed")

// Scan is the parse of one journal file: what is restorable, and what
// damage (if any) the file carries. Records are the raw lines without
// their trailing newline, in journal order.
type Scan struct {
	HeaderLine   []byte // raw header line, newline stripped
	Header       Header
	HeaderOK     bool // header line parsed as JSON
	Records      [][]byte
	Torn         bool // invalid bytes found after the last good record
	Unterminated bool // final record parsed but lacked its newline
	Oversized    int  // records over maxRecord, skipped
}

// Clean reports whether the file needs no salvage.
func (s *Scan) Clean() bool {
	return s.HeaderOK && !s.Torn && !s.Unterminated && s.Oversized == 0
}

// ScanJournal reads the journal at path through fsys, tolerating every
// kind of tail damage a crash can leave: a torn (non-JSON) tail stops
// the scan with everything before it intact, an oversized record is
// skipped with scanning continuing at the next line, and a final
// unterminated-but-valid record is kept. Returns the underlying error
// (e.g. os.ErrNotExist) if the file cannot be opened.
func ScanJournal(fsys FS, path string, maxRecord int) (*Scan, error) {
	fsys = Resolve(fsys)
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()

	sc := &Scan{}
	br := bufio.NewReaderSize(f, 64*1024)
	line, tooLong, err := readJournalLine(br, maxRecord)
	if err != nil && len(line) == 0 {
		return sc, nil // empty file: no header, nothing restorable
	}
	if tooLong || json.Unmarshal(line, &sc.Header) != nil {
		sc.Torn = true
		return sc, nil
	}
	sc.HeaderLine = line
	sc.HeaderOK = true
	if err != nil {
		sc.Unterminated = true // header without newline: no records yet
		return sc, nil
	}
	for {
		line, tooLong, err := readJournalLine(br, maxRecord)
		if tooLong {
			sc.Oversized++
			continue
		}
		if len(line) == 0 && err != nil {
			break // end of journal
		}
		if !json.Valid(line) {
			// A record cut mid-write by a crash; everything before it
			// is intact and restorable.
			sc.Torn = true
			break
		}
		sc.Records = append(sc.Records, line)
		if err != nil {
			sc.Unterminated = true // final line parsed but had no newline
			break
		}
	}
	return sc, nil
}

// readJournalLine reads one newline-terminated line of at most
// maxRecord bytes. Oversized lines are consumed to their newline and
// reported as tooLong with no content, so the caller can keep scanning
// from the next record.
func readJournalLine(br *bufio.Reader, maxRecord int) (line []byte, tooLong bool, err error) {
	for {
		chunk, err := br.ReadSlice('\n')
		if !tooLong {
			line = append(line, chunk...)
			if len(line) > maxRecord {
				line = nil
				tooLong = true
			}
		}
		switch err {
		case bufio.ErrBufferFull:
			continue // line spans buffer chunks; keep accumulating
		case nil:
			if !tooLong {
				line = line[:len(line)-1] // strip the newline
			}
			return line, tooLong, nil
		default:
			// EOF (possibly with a final unterminated line) or a read
			// error: hand back what accumulated.
			return line, tooLong, err
		}
	}
}

// Journal is an open, appendable journal file. Appends are fenced by
// the lease (when one is attached), written as whole lines, synced
// before returning, and rolled back on partial failure so the file
// never holds a half-line in its interior.
type Journal struct {
	mu     sync.Mutex
	fsys   FS
	f      File
	path   string
	lease  *Lease
	offset int64 // bytes of complete lines in the file
	broken bool  // a failed append could not be rolled back
}

// CreateJournal atomically replaces the journal at path with one
// holding headerLine plus records (the compaction step), then keeps it
// open for appends. The new content goes to a sibling temp file that
// is fsynced and renamed over path only once complete, so a crash at
// any instant leaves either the old complete journal or the new one —
// never a truncated in-between. preRename (the crash-window test hook)
// runs between the sync and the rename; lease, when non-nil, fences
// every subsequent Append and must already be held by the caller.
func CreateJournal(fsys FS, path string, headerLine []byte, records [][]byte, lease *Lease, preRename func()) (*Journal, error) {
	fsys = Resolve(fsys)
	tmp := tempPath(path)
	// O_APPEND so that a rolled-back append (Truncate) repositions the
	// next write at the new end instead of leaving a hole.
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Journal, error) {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return nil, err
	}
	j := &Journal{fsys: fsys, f: f, path: path, lease: lease}
	if err := j.writeLine(headerLine); err != nil {
		return fail(err)
	}
	for _, rec := range records {
		if err := j.writeLine(rec); err != nil {
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if preRename != nil {
		// Crash-window test hook: the live journal has not been touched
		// yet, so a kill here loses nothing.
		preRename()
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fail(err)
	}
	return j, nil
}

// writeLine appends line plus newline without fencing or syncing —
// the compaction path batches many lines under one sync.
func (j *Journal) writeLine(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	n, err := j.f.Write(buf)
	if err == nil && n != len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return err
	}
	j.offset += int64(n)
	return nil
}

// Append journals one record line (newline added) and syncs it, so the
// record survives the process dying right afterwards. A failed or
// short write is rolled back with Truncate so the journal's interior
// stays parseable; if even the rollback fails the journal is marked
// broken and refuses further appends rather than corrupting records
// already on disk.
func (j *Journal) Append(line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrJournalClosed
	}
	if j.broken {
		return fmt.Errorf("store: journal %s: disabled by an earlier unrecoverable append failure", j.path)
	}
	if j.lease != nil {
		if err := j.lease.Fence(); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	n, err := j.f.Write(buf)
	if err == nil && n != len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		if n > 0 {
			if terr := j.f.Truncate(j.offset); terr != nil {
				j.broken = true
				return fmt.Errorf("store: journal %s: append failed (%v) and rollback failed (%v); journal disabled", j.path, err, terr)
			}
		}
		return fmt.Errorf("store: journal %s: append: %w", j.path, err)
	}
	j.offset += int64(n)
	if err := j.f.Sync(); err != nil {
		// The line is whole in the file (scanning still works); only
		// its durability against power loss is in doubt.
		return fmt.Errorf("store: journal %s: sync: %w", j.path, err)
	}
	return nil
}

// Path returns the journal's live path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Appends after Close are rejected.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// SalvageJournal repairs the journal at path in place: a torn tail,
// an unterminated final record, or oversized interior junk is rewritten
// away via the same atomic temp+rename path the compaction uses, and a
// journal whose header no longer parses (nothing attributes its
// records to a configuration) is quarantined aside as path+".corrupt".
// Returns whether the file changed. A missing file is not an error.
func SalvageJournal(fsys FS, path string, maxRecord int) (changed bool, err error) {
	fsys = Resolve(fsys)
	sc, err := ScanJournal(fsys, path, maxRecord)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	if !sc.HeaderOK {
		if len(sc.HeaderLine) == 0 && !sc.Torn {
			return false, nil // empty file: harmless
		}
		if err := fsys.Rename(path, path+".corrupt"); err != nil {
			return false, err
		}
		return true, nil
	}
	if sc.Clean() {
		return false, nil
	}
	j, err := CreateJournal(fsys, path, sc.HeaderLine, sc.Records, nil, nil)
	if err != nil {
		return false, err
	}
	return true, j.Close()
}

// ReplayJournal streams the journal's record lines verbatim to w (the
// header is validated against version and skipped), returning the
// record and skipped-oversized counts. Torn tails stop the replay
// silently — callers get exactly the restorable prefix, byte-identical
// on every replay.
func ReplayJournal(fsys FS, path string, version, maxRecord int, w io.Writer) (records, oversized int, err error) {
	sc, err := ScanJournal(fsys, path, maxRecord)
	if err != nil {
		return 0, 0, err
	}
	if !sc.HeaderOK {
		return 0, 0, fmt.Errorf("store: journal %s: unreadable header", path)
	}
	if sc.Header.Version != version {
		return 0, 0, fmt.Errorf("store: journal %s: bad header", path)
	}
	for _, line := range sc.Records {
		if _, werr := fmt.Fprintf(w, "%s\n", line); werr != nil {
			return records, sc.Oversized, werr
		}
		records++
	}
	return records, sc.Oversized, nil
}
