package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Ext is the journal extension in a store directory: one JSONL file
// per sweep fingerprint.
const Ext = ".jsonl"

// reqExt is the request sidecar extension: the raw sweep request body
// saved next to the journal, which is what lets a recovering replica
// reconstruct and resume an interrupted sweep it never saw.
const reqExt = ".req"

// Store is a fingerprint-keyed directory of result journals shared by
// any number of replicas; all claims go through the lease files next
// to each journal.
type Store struct {
	dir  string
	fsys FS
}

// Open ensures dir exists and returns the store. A nil fsys means the
// real filesystem.
func Open(dir string, fsys FS) (*Store, error) {
	fsys = Resolve(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, fsys: fsys}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// FS returns the filesystem the store operates through.
func (s *Store) FS() FS { return s.fsys }

// Path returns the journal path for a fingerprint.
func (s *Store) Path(fp string) string { return filepath.Join(s.dir, fp+Ext) }

// LeasePath returns the claim-file path for a fingerprint's journal.
func (s *Store) LeasePath(fp string) string { return LeasePath(s.Path(fp)) }

// Has reports whether a journal exists for the fingerprint.
func (s *Store) Has(fp string) bool {
	_, err := s.fsys.Stat(s.Path(fp))
	return err == nil
}

// Fingerprints lists the stored fingerprints in sorted order. Lease
// files, request sidecars, quarantined journals and temp debris all
// carry different suffixes and are excluded.
func (s *Store) Fingerprints() ([]string, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var fps []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, ok := strings.CutSuffix(e.Name(), Ext)
		if !ok || !ValidFingerprint(name) {
			continue
		}
		fps = append(fps, name)
	}
	sort.Strings(fps)
	return fps, nil
}

// RequestFingerprints lists the fingerprints with a saved request
// sidecar, sorted — including ones whose journal does not exist yet (a
// crash can land between the sidecar save and the journal's first
// rename; recovery restarts those sweeps from the sidecar alone).
func (s *Store) RequestFingerprints() ([]string, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var fps []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, ok := strings.CutSuffix(e.Name(), reqExt)
		if !ok || !ValidFingerprint(name) {
			continue
		}
		fps = append(fps, name)
	}
	sort.Strings(fps)
	return fps, nil
}

// reqPath returns the request sidecar path for a fingerprint.
func (s *Store) reqPath(fp string) string { return filepath.Join(s.dir, fp+reqExt) }

// SaveRequest persists the raw sweep request body for fp (atomically,
// so recovery never parses a half-written request).
func (s *Store) SaveRequest(fp string, body []byte) error {
	tmp := tempPath(s.reqPath(fp))
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		_ = f.Close()
		_ = s.fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = s.fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fsys.Remove(tmp)
		return err
	}
	if err := s.fsys.Rename(tmp, s.reqPath(fp)); err != nil {
		_ = s.fsys.Remove(tmp)
		return err
	}
	return nil
}

// LoadRequest returns the saved request body for fp, if any.
func (s *Store) LoadRequest(fp string) ([]byte, bool) {
	f, err := s.fsys.OpenFile(s.reqPath(fp), os.O_RDONLY, 0)
	if err != nil {
		return nil, false
	}
	raw, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, false
	}
	return raw, true
}

// ValidFingerprint reports whether fp looks like a sweep fingerprint:
// exactly 16 lowercase hex digits (the %016x FNV-64 the pipeline
// produces).
func ValidFingerprint(fp string) bool {
	if len(fp) != 16 {
		return false
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// IsNotExist reports whether err is a missing-file error from any FS
// implementation.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
