package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testHeader = `{"version":1,"fingerprint":"0123456789abcdef"}`

func writeJournalFile(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScanJournalTornTail: a crash mid-append leaves a half-line tail;
// the scan keeps every record before it.
func TestScanJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	writeJournalFile(t, path,
		testHeader+"\n",
		`{"key":"a"}`+"\n",
		`{"key":"b"}`+"\n",
		`{"key":"c","run`) // torn: cut mid-record, no newline
	sc, err := ScanJournal(nil, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.HeaderOK || !sc.Torn || sc.Clean() {
		t.Fatalf("scan flags: headerOK=%v torn=%v clean=%v", sc.HeaderOK, sc.Torn, sc.Clean())
	}
	if len(sc.Records) != 2 || string(sc.Records[1]) != `{"key":"b"}` {
		t.Fatalf("restorable prefix = %q", sc.Records)
	}
}

// TestScanJournalUnterminatedFinalRecord: a record that is whole JSON
// but lost its newline to a crash is kept — the data survived even if
// the line ending did not.
func TestScanJournalUnterminatedFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	writeJournalFile(t, path, testHeader+"\n", `{"key":"a"}`+"\n", `{"key":"b"}`)
	sc, err := ScanJournal(nil, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Unterminated || sc.Torn {
		t.Fatalf("scan flags: unterminated=%v torn=%v", sc.Unterminated, sc.Torn)
	}
	if len(sc.Records) != 2 || string(sc.Records[1]) != `{"key":"b"}` {
		t.Fatalf("records = %q", sc.Records)
	}
}

// TestSalvageJournalRewritesTornTail: salvage rewrites the journal to
// its restorable prefix, atomically, and the replay bytes before and
// after salvage are identical.
func TestSalvageJournalRewritesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	writeJournalFile(t, path,
		testHeader+"\n",
		`{"key":"a"}`+"\n",
		`{"key":"b"}`+"\n",
		"\x00\x00garbage")

	var before bytes.Buffer
	if _, _, err := ReplayJournal(nil, path, 1, 1<<20, &before); err != nil {
		t.Fatal(err)
	}
	changed, err := SalvageJournal(nil, path, 1<<20)
	if err != nil || !changed {
		t.Fatalf("salvage: changed=%v err=%v", changed, err)
	}
	var after bytes.Buffer
	if _, _, err := ReplayJournal(nil, path, 1, 1<<20, &after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("replay changed across salvage:\nbefore %q\nafter  %q", before.Bytes(), after.Bytes())
	}
	sc, err := ScanJournal(nil, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Clean() {
		t.Fatal("journal not clean after salvage")
	}
	// Salvage is idempotent.
	if changed, err := SalvageJournal(nil, path, 1<<20); err != nil || changed {
		t.Fatalf("second salvage: changed=%v err=%v", changed, err)
	}
	// And leaves no temp debris behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sweep.jsonl" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after salvage: %v", names)
	}
}

// TestSalvageJournalQuarantinesHeaderless: a journal whose header no
// longer parses cannot attribute its records to any configuration; it
// is moved aside, not deleted and not trusted.
func TestSalvageJournalQuarantinesHeaderless(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	writeJournalFile(t, path, "\x7fELF not a journal\n", `{"key":"a"}`+"\n")
	changed, err := SalvageJournal(nil, path, 1<<20)
	if err != nil || !changed {
		t.Fatalf("salvage: changed=%v err=%v", changed, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("headerless journal still at live path (stat err %v)", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestScanJournalOversizedRecordSkipped: an absurdly long line (fault
// or corruption) is skipped and counted; scanning resumes at the next
// record rather than abandoning the journal.
func TestScanJournalOversizedRecordSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	writeJournalFile(t, path,
		testHeader+"\n",
		`{"key":"a"}`+"\n",
		`{"key":"huge","pad":"`+strings.Repeat("x", 4096)+`"}`+"\n",
		`{"key":"b"}`+"\n")
	sc, err := ScanJournal(nil, path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Oversized != 1 || len(sc.Records) != 2 {
		t.Fatalf("oversized=%d records=%q", sc.Oversized, sc.Records)
	}
}

// TestJournalAppendDurableOrder: records appended one by one land in
// order and replay byte-identically.
func TestJournalAppendDurableOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(nil, path, []byte(testHeader), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"key":"a"}`, `{"key":"b"}`, `{"key":"c"}`}
	for _, rec := range want {
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")); err != ErrJournalClosed {
		t.Fatalf("append after close = %v, want ErrJournalClosed", err)
	}
	sc, err := ScanJournal(nil, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Clean() || len(sc.Records) != len(want) {
		t.Fatalf("clean=%v records=%q", sc.Clean(), sc.Records)
	}
	for i, rec := range want {
		if string(sc.Records[i]) != rec {
			t.Fatalf("record %d = %q, want %q", i, sc.Records[i], rec)
		}
	}
}
