package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"

	"capscale/internal/obs"
)

// DefaultLeaseTTL is how long a claim stays valid without renewal.
// Executors renew at TTL/3, so three consecutive missed renewals (a
// hung or dead replica) free the sweep for takeover.
const DefaultLeaseTTL = 5 * time.Second

// ErrLeaseHeld is returned (wrapped in *HeldError) when another live
// owner holds the lease.
var ErrLeaseHeld = errors.New("store: lease held by another owner")

// ErrLeaseLost is returned by Fence/Renew once the lease has expired
// or been stolen: the holder is now a zombie and must stop writing.
var ErrLeaseLost = errors.New("store: lease lost")

// LeaseInfo is the on-disk claim record. Epoch increases monotonically
// across ownership changes (acquire and steal bump it, renew does
// not), which is what fences a zombie's late writes: the zombie's
// in-memory epoch no longer matches the file.
type LeaseInfo struct {
	Owner   string `json:"owner"`
	Host    string `json:"host,omitempty"`
	PID     int    `json:"pid,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Expires int64  `json:"expires_unix_nano"`
}

// HeldError reports a failed acquire with the live holder's claim.
type HeldError struct {
	Path string
	Info LeaseInfo
}

func (e *HeldError) Error() string {
	return fmt.Sprintf("store: lease %s held by %q (epoch %d)", e.Path, e.Info.Owner, e.Info.Epoch)
}

func (e *HeldError) Unwrap() error { return ErrLeaseHeld }

// LeasePath is the claim file guarding a journal.
func LeasePath(journalPath string) string { return journalPath + ".lease" }

var (
	leaseAcquired = obs.GetCounter("store.lease.acquired")
	leaseStolen   = obs.GetCounter("store.lease.stolen")
	leaseHeld     = obs.GetCounter("store.lease.held")
	leaseRenewed  = obs.GetCounter("store.lease.renewed")
	leaseLost     = obs.GetCounter("store.lease.lost")
)

// Lease is a held claim. All methods are safe for concurrent use; the
// journal calls Fence from the append path while a background
// goroutine calls Renew.
type Lease struct {
	fsys  FS
	path  string
	now   func() time.Time
	mu    sync.Mutex
	info  LeaseInfo
	ttl   time.Duration
	lost  bool
	freed bool
}

// hostID tags leases so liveness probing (kill(pid, 0)) is only
// attempted against processes on the same machine.
var hostID = func() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown-host"
	}
	return h
}()

// ownerDead reports whether a claim verifiably belongs to a process on
// this host that no longer exists. That lets a surviving replica steal
// a kill -9'd neighbour's lease immediately instead of waiting out the
// TTL; cross-host claims always wait for expiry.
func ownerDead(info LeaseInfo) bool {
	if info.Host != hostID || info.PID <= 0 || info.PID == os.Getpid() {
		return false
	}
	return syscall.Kill(info.PID, 0) == syscall.ESRCH
}

// AcquireLease claims the lease at path for owner, stealing expired or
// verifiably dead claims with an epoch bump. A live claim by someone
// else returns *HeldError. now==nil uses the wall clock (tests inject
// a fake clock to drive expiry deterministically).
func AcquireLease(fsys FS, path, owner string, ttl time.Duration, now func() time.Time) (*Lease, error) {
	fsys = Resolve(fsys)
	if now == nil {
		now = time.Now
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	unlock, err := lockLease(fsys, path)
	if err != nil {
		return nil, err
	}
	defer unlock()

	prev, exists, err := readLease(fsys, path)
	if err != nil {
		return nil, err
	}
	t := now()
	if exists && prev.Expires > t.UnixNano() && !ownerDead(prev) {
		leaseHeld.Inc()
		return nil, &HeldError{Path: path, Info: prev}
	}
	info := LeaseInfo{
		Owner:   owner,
		Host:    hostID,
		PID:     os.Getpid(),
		Epoch:   prev.Epoch + 1,
		Expires: t.Add(ttl).UnixNano(),
	}
	if err := writeLease(fsys, path, info); err != nil {
		return nil, err
	}
	if exists {
		leaseStolen.Inc()
	} else {
		leaseAcquired.Inc()
	}
	return &Lease{fsys: fsys, path: path, now: now, info: info, ttl: ttl}, nil
}

// ReadLeaseInfo reports the current claim and whether it is still
// live at the given time (a dead same-host owner counts as not live).
func ReadLeaseInfo(fsys FS, path string, at time.Time) (LeaseInfo, bool) {
	info, exists, err := readLease(Resolve(fsys), path)
	if err != nil || !exists {
		return LeaseInfo{}, false
	}
	live := info.Expires > at.UnixNano() && !ownerDead(info)
	return info, live
}

// Renew extends the claim without changing the epoch. It re-reads the
// file first: if the epoch moved (stolen) or the claim expired and was
// removed, the lease is lost and every subsequent Fence fails.
func (l *Lease) Renew() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.freed {
		return ErrLeaseLost
	}
	if l.lost {
		return ErrLeaseLost
	}
	unlock, err := lockLease(l.fsys, l.path)
	if err != nil {
		return err
	}
	defer unlock()
	cur, exists, err := readLease(l.fsys, l.path)
	if err != nil {
		return err
	}
	if !exists || cur.Epoch != l.info.Epoch || cur.Owner != l.info.Owner {
		l.lost = true
		leaseLost.Inc()
		return fmt.Errorf("%w: epoch %d superseded by %d (owner %q)",
			ErrLeaseLost, l.info.Epoch, cur.Epoch, cur.Owner)
	}
	l.info.Expires = l.now().Add(l.ttl).UnixNano()
	if err := writeLease(l.fsys, l.path, l.info); err != nil {
		return err
	}
	leaseRenewed.Inc()
	return nil
}

// Fence guards a write: it fails with ErrLeaseLost once the claim has
// been stolen or has lapsed. While more than half the TTL remains the
// in-memory expiry is trusted (no I/O on the append fast path); inside
// that window Fence renews, which re-verifies the epoch on disk.
func (l *Lease) Fence() error {
	l.mu.Lock()
	if l.lost || l.freed {
		l.mu.Unlock()
		return ErrLeaseLost
	}
	remaining := time.Duration(l.info.Expires - l.now().UnixNano())
	l.mu.Unlock()
	if remaining > l.ttl/2 {
		return nil
	}
	if err := l.Renew(); err != nil {
		if !errors.Is(err, ErrLeaseLost) {
			// Treat an unreadable lease as lost: without a verified
			// claim, continuing to write risks interleaving with a
			// legitimate new owner.
			l.mu.Lock()
			l.lost = true
			l.mu.Unlock()
			leaseLost.Inc()
			err = fmt.Errorf("%w: %v", ErrLeaseLost, err)
		}
		return err
	}
	return nil
}

// Lost reports whether the lease has been observed lost.
func (l *Lease) Lost() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost || l.freed
}

// Epoch returns the claim's epoch.
func (l *Lease) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.info.Epoch
}

// Owner returns the claim's owner ID.
func (l *Lease) Owner() string { return l.info.Owner }

// TTL returns the claim's time-to-live between renewals.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Release removes the claim file if this lease still owns it, freeing
// the journal for the next acquirer without waiting out the TTL.
func (l *Lease) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.freed {
		return nil
	}
	l.freed = true
	if l.lost {
		return nil // stolen: the file belongs to the new owner now
	}
	unlock, err := lockLease(l.fsys, l.path)
	if err != nil {
		return err
	}
	defer unlock()
	cur, exists, err := readLease(l.fsys, l.path)
	if err != nil || !exists {
		return err
	}
	if cur.Epoch != l.info.Epoch || cur.Owner != l.info.Owner {
		return nil
	}
	return l.fsys.Remove(l.path)
}

// --- on-disk plumbing ---

// lockLease serializes lease mutations through an O_EXCL lock file, so
// two stealers racing an expired claim cannot both write epoch+1. The
// lock is advisory and short-lived; one left behind by a kill is
// broken after lockStaleAfter of real time.
const lockStaleAfter = 1 * time.Second

func lockLease(fsys FS, path string) (func(), error) {
	lock := path + ".lock"
	deadline := time.Now().Add(5 * time.Second)
	waited := time.Duration(0)
	for {
		f, err := fsys.OpenFile(lock, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			if cerr := f.Close(); cerr != nil {
				_ = fsys.Remove(lock)
				return nil, cerr
			}
			return func() { _ = fsys.Remove(lock) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, err
		}
		if waited >= lockStaleAfter {
			// Holder died mid-mutation; break the lock and retry.
			_ = fsys.Remove(lock)
			waited = 0
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("store: lease lock %s: timed out", lock)
		}
		time.Sleep(10 * time.Millisecond)
		waited += 10 * time.Millisecond
	}
}

func readLease(fsys FS, path string) (LeaseInfo, bool, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return LeaseInfo{}, false, nil
		}
		return LeaseInfo{}, false, err
	}
	raw, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return LeaseInfo{}, false, err
	}
	if cerr != nil {
		return LeaseInfo{}, false, cerr
	}
	var info LeaseInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		// A torn lease file (crash mid-write) is treated as no claim:
		// the journal itself is still fenced by epoch monotonicity.
		return LeaseInfo{}, false, nil
	}
	return info, true, nil
}

// writeLease replaces the claim atomically (temp + sync + rename) so a
// crash never leaves a half-written claim visible at the lease path.
func writeLease(fsys FS, path string, info LeaseInfo) error {
	raw, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := tempPath(path)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return nil
}
