package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable wall clock: lease expiry is driven by
// explicit Advance calls, so steal/fence tests never sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestAcquireLeaseExclusive: N goroutines race for one lease; exactly
// one wins, the rest observe the winner's claim via *HeldError.
func TestAcquireLeaseExclusive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl.lease")
	const racers = 8
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		won  []*Lease
		held int
	)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := AcquireLease(nil, path, fmt.Sprintf("racer-%d", i), time.Minute, nil)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				won = append(won, l)
			case errors.Is(err, ErrLeaseHeld):
				held++
			default:
				t.Errorf("racer %d: unexpected error: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if len(won) != 1 {
		t.Fatalf("want exactly 1 winner, got %d (%d held)", len(won), held)
	}
	if held != racers-1 {
		t.Fatalf("want %d losers with ErrLeaseHeld, got %d", racers-1, held)
	}
	if got := won[0].Epoch(); got != 1 {
		t.Fatalf("first claim epoch = %d, want 1", got)
	}
	if err := won[0].Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("lease file still present after release (stat err %v)", err)
	}
}

// TestLeaseExpirySteal: an expired claim is stolen with an epoch bump,
// and every subsequent fence by the old holder fails — the zombie is
// refused before it can write.
func TestLeaseExpirySteal(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "sweep.jsonl.lease")
	a, err := AcquireLease(nil, path, "replica-a", time.Second, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireLease(nil, path, "replica-b", time.Second, clk.Now); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("live claim not held against second acquirer: %v", err)
	}
	var holder *HeldError
	if _, err := AcquireLease(nil, path, "replica-b", time.Second, clk.Now); !errors.As(err, &holder) || holder.Info.Owner != "replica-a" {
		t.Fatalf("HeldError does not name the holder: %v", err)
	}

	clk.Advance(2 * time.Second) // past replica-a's expiry
	b, err := AcquireLease(nil, path, "replica-b", time.Second, clk.Now)
	if err != nil {
		t.Fatalf("steal of expired claim failed: %v", err)
	}
	if b.Epoch() != a.Epoch()+1 {
		t.Fatalf("steal epoch = %d, want %d", b.Epoch(), a.Epoch()+1)
	}

	// The zombie: its in-memory expiry has passed, so Fence re-verifies
	// on disk, sees the bumped epoch, and refuses.
	if err := a.Fence(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie Fence = %v, want ErrLeaseLost", err)
	}
	if err := a.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie Renew = %v, want ErrLeaseLost", err)
	}
	if !a.Lost() {
		t.Fatal("zombie lease does not report Lost")
	}
	// A lost lease's Release must not remove the new owner's claim.
	if err := a.Release(); err != nil {
		t.Fatalf("zombie release: %v", err)
	}
	if info, live := ReadLeaseInfo(nil, path, clk.Now()); !live || info.Owner != "replica-b" {
		t.Fatalf("replica-b's claim damaged by zombie release: %+v live=%v", info, live)
	}
}

// TestLeaseRenewUnderLoad: concurrent fencing while the claim is
// renewed around its expiry never loses a lease that nobody contests.
func TestLeaseRenewUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl.lease")
	l, err := AcquireLease(nil, path, "replica-a", 50*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := l.Fence(); err != nil {
					t.Errorf("Fence under load: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if l.Lost() {
		t.Fatal("uncontested lease lost under renewal load")
	}
	if err := l.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestLeaseDeadOwnerFastSteal: a same-host claim whose PID verifiably
// no longer exists is stolen immediately, without waiting out the TTL.
func TestLeaseDeadOwnerFastSteal(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "sweep.jsonl.lease")
	// Hand-write a claim naming a dead process: far-future expiry, so
	// only the liveness probe can free it.
	dead := LeaseInfo{
		Owner:   "crashed-replica",
		Host:    hostID,
		PID:     findDeadPID(t),
		Epoch:   7,
		Expires: clk.Now().Add(time.Hour).UnixNano(),
	}
	if err := writeLease(OS(), path, dead); err != nil {
		t.Fatal(err)
	}
	if _, live := ReadLeaseInfo(nil, path, clk.Now()); live {
		t.Fatal("dead owner's claim reported live")
	}
	l, err := AcquireLease(nil, path, "survivor", time.Minute, clk.Now)
	if err != nil {
		t.Fatalf("fast steal of dead owner's claim failed: %v", err)
	}
	if l.Epoch() != dead.Epoch+1 {
		t.Fatalf("steal epoch = %d, want %d", l.Epoch(), dead.Epoch+1)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}

// findDeadPID returns a PID with no live process behind it.
func findDeadPID(t *testing.T) int {
	t.Helper()
	for pid := 1 << 21; pid > 1<<20; pid-- {
		if ownerDead(LeaseInfo{Host: hostID, PID: pid}) {
			return pid
		}
	}
	t.Skip("no verifiably dead PID found")
	return 0
}

// TestLeaseTornFileIsNoClaim: a half-written lease file (crash during
// a non-atomic writer) counts as no claim rather than blocking the
// journal forever.
func TestLeaseTornFileIsNoClaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl.lease")
	if err := os.WriteFile(path, []byte(`{"owner":"repl`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, live := ReadLeaseInfo(nil, path, time.Now()); live {
		t.Fatal("torn lease file reported as a live claim")
	}
	l, err := AcquireLease(nil, path, "replica-a", time.Minute, nil)
	if err != nil {
		t.Fatalf("acquire over torn lease file: %v", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestZombieJournalAppendFenced: the end-to-end fencing property — a
// journal held under a stolen lease refuses appends, and the records
// on disk afterwards are exactly the ones written under valid claims.
func TestZombieJournalAppendFenced(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.jsonl")
	lpath := LeasePath(jpath)

	a, err := AcquireLease(nil, lpath, "replica-a", time.Second, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	header := []byte(`{"version":1,"fingerprint":"0123456789abcdef"}`)
	j, err := CreateJournal(nil, jpath, header, nil, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"key":"cell-1"}`)); err != nil {
		t.Fatalf("append under live lease: %v", err)
	}

	clk.Advance(2 * time.Second)
	if _, err := AcquireLease(nil, lpath, "replica-b", time.Minute, clk.Now); err != nil {
		t.Fatalf("takeover acquire: %v", err)
	}

	if err := j.Append([]byte(`{"key":"cell-2"}`)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie append = %v, want ErrLeaseLost", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := ScanJournal(nil, jpath, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Clean() || len(sc.Records) != 1 || string(sc.Records[0]) != `{"key":"cell-1"}` {
		t.Fatalf("journal after fenced zombie: clean=%v records=%q", sc.Clean(), sc.Records)
	}
}
