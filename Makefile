.PHONY: check test race bench bench-kernels

# Full verify gate: gofmt, vet, build, tests, race pass on the
# concurrent packages.
check:
	./scripts/check.sh

test:
	go test ./...

race:
	go test -race ./internal/sched/... ./internal/kernel/...
	go test -race ./internal/rapl/... ./internal/papi/... ./internal/trace/... ./internal/monitor/...

bench:
	go test -bench=. -benchmem

# The perf-trajectory benchmarks this repo tracks across PRs.
bench-kernels:
	go test ./internal/kernel/ -bench 'BenchmarkGemm' -benchmem
	go test ./internal/sched/ -bench 'BenchmarkSchedDispatch' -benchmem
	go test . -bench 'BenchmarkSimulatorThroughput'
