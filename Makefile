.PHONY: check test race bench bench-kernels bench-driver bench-sim bench-model trace-smoke chaos-smoke dist-smoke model-smoke serve-smoke crash-smoke errcheck

# Full verify gate: gofmt, vet, build, tests, race pass on the
# concurrent packages.
check:
	./scripts/check.sh

test:
	go test ./...

race:
	go test -race ./internal/sched/... ./internal/kernel/... ./internal/obs/...
	go test -race ./internal/rapl/... ./internal/papi/... ./internal/trace/... ./internal/monitor/... ./internal/faults/...
	go test -race ./internal/mpi/... ./internal/dmm/... ./internal/cluster/...
	go test -race ./internal/serve/...

# Run a small sweep through the powertrace CLI with -trace-out and
# validate the emitted Perfetto trace structurally.
trace-smoke:
	./scripts/trace_smoke.sh

# Seeded fault-injection sweep through the powertrace CLI: asserts the
# pipeline degrades gracefully (exit 0, degradation flagged on stderr,
# deterministic per seed, checkpoint resume bit-identical).
chaos-smoke:
	./scripts/chaos_smoke.sh

# 4-node GigE sweep through the epscale CLI: comm table rendered,
# every distributed cell reconciled against ground truth, checkpoint
# resume bit-identical.
dist-smoke:
	./scripts/dist_smoke.sh

# Model-guided sweep through the epscale CLI: the planner must stay
# inside its 1/3 measurement budget, fit tightly, and be deterministic.
model-smoke:
	./scripts/model_smoke.sh

# Sweep-service smoke through the epscaled daemon: two overlapping
# identical sweeps execute each shared cell once, results replay
# byte-identically by fingerprint, SIGTERM drains cleanly.
serve-smoke:
	./scripts/serve_smoke.sh

# Crash-recovery smoke: kill -9 a leaseholder replica mid-sweep; the
# surviving replica sharing the store steals the lease, resumes from
# the journal, and streams exactly the missing cells — no re-execution
# of journaled work, byte-identical replay.
crash-smoke:
	./scripts/crash_smoke.sh

# Focused errcheck pass: dropped Close/Sync/Rename/Remove/Truncate/
# Flush error returns in the packages that own on-disk state.
errcheck:
	go run ./scripts/errcheck

bench:
	go test -bench=. -benchmem

# The perf-trajectory benchmarks this repo tracks across PRs.
bench-kernels:
	go test ./internal/kernel/ -bench 'BenchmarkGemm' -benchmem
	go test ./internal/sched/ -bench 'BenchmarkSchedDispatch' -benchmem
	go test . -bench 'BenchmarkSimulatorThroughput'

# Experiment-driver trajectory: sequential vs parallel vs memoized
# sweeps and dense vs shape-only tree builds, recorded to
# BENCH_driver.json.
bench-driver:
	./scripts/bench_driver.sh

# Simulator-core trajectory: the event-driven scheduler's worker-count
# sweep (4 → 262144), recorded to BENCH_sim.json. ns/leaf should stay
# near-flat across the sweep.
bench-sim:
	./scripts/bench_sim.sh

# Measurement-avoidance trajectory: guided vs exhaustive executed
# cells and wall time on the same matrix, recorded to BENCH_model.json.
bench-model:
	./scripts/bench_model.sh
