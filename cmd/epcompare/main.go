// Command epcompare diffs two saved experiment matrices (epscale
// -save) cell by cell: time, power and EP deltas per configuration —
// for comparing calibrations, machines, or ablation settings without
// re-reading two walls of tables.
//
// Usage:
//
//	epscale -save base.json >/dev/null
//	epscale -ablate-affinity -save noaff.json >/dev/null
//	epcompare base.json noaff.json
package main

import (
	"flag"
	"fmt"
	"os"

	"capscale/internal/report"
	"capscale/internal/workload"
)

func main() {
	threshold := flag.Float64("threshold", 0.005, "hide rows where every delta is under this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: epcompare [-threshold f] base.json other.json")
		os.Exit(2)
	}
	base, err := loadMatrix(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "epcompare: %v\n", err)
		os.Exit(1)
	}
	other, err := loadMatrix(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "epcompare: %v\n", err)
		os.Exit(1)
	}

	t := &report.Table{
		Title:  fmt.Sprintf("%s vs %s (positive = second slower/hotter)", flag.Arg(0), flag.Arg(1)),
		Header: []string{"algorithm", "N", "threads", "Δtime", "Δwatts", "ΔEP"},
	}
	shown, hidden := 0, 0
	for i := range base.Runs {
		b := &base.Runs[i]
		o := other.Get(b.Alg, b.N, b.Threads)
		if o == nil {
			t.AddRow(b.Alg.String(), fmt.Sprint(b.N), fmt.Sprint(b.Threads), "missing", "missing", "missing")
			shown++
			continue
		}
		dt := o.Seconds/b.Seconds - 1
		dw := o.WattsTotal()/b.WattsTotal() - 1
		de := o.EP()/b.EP() - 1
		if abs(dt) < *threshold && abs(dw) < *threshold && abs(de) < *threshold {
			hidden++
			continue
		}
		t.AddRow(b.Alg.String(), fmt.Sprint(b.N), fmt.Sprint(b.Threads),
			pct(dt), pct(dw), pct(de))
		shown++
	}
	fmt.Print(t.String())
	fmt.Printf("(%d rows shown, %d under the %.1f%% threshold hidden)\n", shown, hidden, *threshold*100)
}

func loadMatrix(path string) (*workload.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.LoadJSON(f)
}

func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
