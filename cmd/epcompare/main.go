// Command epcompare diffs two saved experiment matrices (epscale
// -save) cell by cell: time, power and EP deltas per configuration —
// for comparing calibrations, machines, or ablation settings without
// re-reading two walls of tables.
//
// Usage:
//
//	epscale -save base.json >/dev/null
//	epscale -ablate-affinity -save noaff.json >/dev/null
//	epcompare base.json noaff.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"capscale/internal/obs"
	"capscale/internal/report"
	"capscale/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable CLI body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epcompare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold  = fs.Float64("threshold", 0.005, "hide rows where every delta is under this fraction")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintf(stderr, "epcompare: -threshold must be >= 0, got %g\n", *threshold)
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: epcompare [-threshold f] base.json other.json")
		return 2
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "epcompare: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "epcompare: %v\n", err)
		}
	}()

	base, err := loadMatrix(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "epcompare: %v\n", err)
		return 1
	}
	other, err := loadMatrix(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "epcompare: %v\n", err)
		return 1
	}
	// A saved matrix can carry degraded or failed cells (fault-injected
	// sweeps); deltas computed from them are not clean-vs-clean.
	for i, mx := range []*workload.Matrix{base, other} {
		if s := mx.DegradationSummary(); s != "" {
			fmt.Fprintf(stderr, "epcompare: %s is degraded:\n%s", fs.Arg(i), s)
		}
	}

	t := &report.Table{
		Title:  fmt.Sprintf("%s vs %s (positive = second slower/hotter)", fs.Arg(0), fs.Arg(1)),
		Header: []string{"algorithm", "N", "threads", "Δtime", "Δwatts", "ΔEP"},
	}
	shown, hidden := 0, 0
	for i := range base.Runs {
		b := &base.Runs[i]
		o := other.Get(b.Alg, b.N, b.Threads)
		if o == nil {
			t.AddRow(b.Alg.String(), fmt.Sprint(b.N), fmt.Sprint(b.Threads), "missing", "missing", "missing")
			shown++
			continue
		}
		dt := o.Seconds/b.Seconds - 1
		dw := o.WattsTotal()/b.WattsTotal() - 1
		de := o.EP()/b.EP() - 1
		if abs(dt) < *threshold && abs(dw) < *threshold && abs(de) < *threshold {
			hidden++
			continue
		}
		t.AddRow(b.Alg.String(), fmt.Sprint(b.N), fmt.Sprint(b.Threads),
			pct(dt), pct(dw), pct(de))
		shown++
	}
	fmt.Fprint(stdout, t.String())
	fmt.Fprintf(stdout, "(%d rows shown, %d under the %.1f%% threshold hidden)\n", shown, hidden, *threshold*100)
	return 0
}

func loadMatrix(path string) (*workload.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.LoadJSON(f)
}

func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
