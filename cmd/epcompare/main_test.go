package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capscale/internal/workload"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"no args", nil, "usage: epcompare"},
		{"one arg", []string{"base.json"}, "usage: epcompare"},
		{"three args", []string{"a.json", "b.json", "c.json"}, "usage: epcompare"},
		{"negative threshold", []string{"-threshold", "-0.1", "a.json", "b.json"}, "-threshold must be >= 0"},
		{"missing file", []string{"/nonexistent/base.json", "/nonexistent/other.json"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("args %v: stderr %q lacks %q", tc.args, stderr.String(), tc.want)
			}
		})
	}
}

func saveSmokeMatrix(t *testing.T, dir, name string, ablate bool) string {
	t.Helper()
	cfg := workload.SmokeConfig()
	cfg.DisableAffinity = ablate
	mx := workload.Execute(cfg)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := mx.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareTwoMatrices(t *testing.T) {
	dir := t.TempDir()
	base := saveSmokeMatrix(t, dir, "base.json", false)
	noaff := saveSmokeMatrix(t, dir, "noaff.json", true)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-threshold", "0", base, noaff}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "rows shown") {
		t.Fatalf("diff summary missing:\n%s", stdout.String())
	}
}
