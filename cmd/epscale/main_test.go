package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagValidation pins the CLI boundary: bad input produces a
// one-line usage error on stderr and a non-zero exit, never a panic or
// a silently-clamped run.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"bad sizes", []string{"-sizes", "512,banana"}, "bad integer"},
		{"zero size", []string{"-sizes", "0"}, "must be positive"},
		{"negative threads", []string{"-threads", "-2"}, "-threads"},
		{"threads beyond cores", []string{"-threads", "64"}, "exceeds"},
		{"negative jobs", []string{"-j", "-1"}, "-j must be >= 0"},
		{"zero nodes", []string{"-nodes", "0"}, "-nodes must be >= 1"},
		{"threads beyond cluster", []string{"-nodes", "2", "-threads", "9"}, "exceeds"},
		{"unknown artifact", []string{"-what", "table99", "-quick", "-sizes", "64", "-threads", "1"}, "unknown artifact"},
		{"artifact error lists modes", []string{"-what", "table99"}, "valid: all, table2"},
		{"csv needs artifact", []string{"-csv", "-sizes", "64", "-threads", "1"}, "-csv requires"},
		{"chart for table", []string{"-chart", "-what", "table2", "-sizes", "64", "-threads", "1"}, "no chart"},
		{"unknown plan", []string{"-plan", "psychic"}, "valid: exhaustive, guided"},
		{"seed fraction range", []string{"-plan", "guided", "-seed-frac", "1.5"}, "-seed-frac"},
		{"negative confidence", []string{"-plan", "guided", "-confidence", "-0.1"}, "-confidence"},
		{"guided rejects traces", []string{"-plan", "guided", "-trace-out", "x.json"}, "drop -trace-out"},
		{"guided rejects faults", []string{"-plan", "guided", "-faults", "7"}, "drop -faults"},
		{"unknown algorithm", []string{"-algs", "openblas,nope"}, "unknown algorithm"},
		{"algorithm error lists names", []string{"-algs", "nope"}, "SpMV"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("args %v: stderr %q lacks %q", tc.args, stderr.String(), tc.want)
			}
		})
	}
}

// TestTinyMatrixRuns exercises a full tiny pipeline through the CLI
// entry point.
func TestTinyMatrixRuns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-what", "table3", "-sizes", "64", "-threads", "1,2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table III") {
		t.Fatalf("stdout lacks Table III:\n%s", stdout.String())
	}
}

// TestNodesRaisesThreadCeiling: -nodes wraps the paper machine in a
// flat cluster, so thread counts beyond one node's 4 cores become
// legal and actually simulate.
func TestNodesRaisesThreadCeiling(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-what", "table3", "-nodes", "4", "-sizes", "64", "-threads", "1,16"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table III") {
		t.Fatalf("stdout lacks Table III:\n%s", stdout.String())
	}
}

// TestGuidedModelArtifact drives a guided sweep through the CLI: the
// planner note lands on stderr and the model report on stdout.
func TestGuidedModelArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-plan", "guided", "-what", "model",
		"-sizes", "128,192,256,384", "-threads", "1,2,3,4"}
	code := run(args, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "guided plan measured") {
		t.Fatalf("stderr lacks planner note:\n%s", stderr.String())
	}
	for _, want := range []string{"Energy-complexity model", "pkg.eps_op", "Worst measured-vs-predicted"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout lacks %q:\n%s", want, stdout.String())
		}
	}
}

// TestSparseAlgsFlag: -algs swaps the matrix to the sparse workloads.
func TestSparseAlgsFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-algs", "SpMV,CG", "-what", "measurement",
		"-sizes", "256", "-threads", "1,2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "SpMV") || !strings.Contains(stdout.String(), "CG") {
		t.Fatalf("stdout lacks sparse rows:\n%s", stdout.String())
	}
}

// TestMetricsFlagPrintsTable: -metrics lands the registry snapshot on
// stderr alongside the scientific output.
func TestMetricsFlagPrintsTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-what", "table3", "-sizes", "64", "-threads", "1", "-metrics"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	for _, want := range []string{"Pipeline metrics", "workload.cache", "sim.leaves.executed"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("stderr lacks %q:\n%s", want, stderr.String())
		}
	}
}
