// Command epscale runs the paper's experiment matrix on the simulated
// platform and regenerates its tables and figures.
//
// Usage:
//
//	epscale                    # full 48-run matrix, all tables/figures
//	epscale -what table3       # one artifact
//	epscale -quick             # smaller matrix for a fast look
//	epscale -csv -what fig7    # CSV instead of aligned text
//	epscale -sizes 512,1024 -threads 1,2,3,4
//	epscale -ablate-affinity   # communication charging off
//	epscale -trace-out sweep.json -metrics   # Perfetto trace + metrics
//	epscale -plan guided -what model         # model-guided sweep + fit report
//	epscale -algs SpMV,CG -what measurement  # sparse workloads only
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"capscale/internal/caps"
	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/faults"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/obs"
	"capscale/internal/report"
	"capscale/internal/sim"
	"capscale/internal/sparse"
	"capscale/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// artifactNames is the single ordered registry of -what modes. The
// flag help and the unknown-artifact error both derive from it, so
// the advertised list cannot drift from what run() accepts.
var artifactNames = []string{
	"all", "table2", "table3", "table4",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"headlines", "breakdown", "measurement", "comm", "model",
	"future-dmm", "future-sparse", "platforms",
}

func knownArtifact(name string) bool {
	for _, a := range artifactNames {
		if a == name {
			return true
		}
	}
	return false
}

// run is main with its environment abducted: flag parsing, validation
// and the whole pipeline run against explicit writers so the CLI
// boundary is testable. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epscale", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		what       = fs.String("what", "all", "artifact: "+strings.Join(artifactNames, ", "))
		quick      = fs.Bool("quick", false, "use a reduced matrix (sizes 512,1024; threads 1..4)")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned text")
		chart      = fs.Bool("chart", false, "render figures as ASCII line charts (fig3..fig7)")
		sizes      = fs.String("sizes", "", "comma-separated problem sizes (default: paper's 512,1024,2048,4096)")
		threads    = fs.String("threads", "", "comma-separated thread counts (default: paper's 1,2,3,4)")
		nodes      = fs.Int("nodes", 1, "replicate the machine across this many nodes (flat cluster; raises the thread ceiling)")
		noAffinity = fs.Bool("ablate-affinity", false, "disable affinity/communication charging")
		noContend  = fs.Bool("ablate-contention", false, "disable DRAM bandwidth contention")
		save       = fs.String("save", "", "save the executed matrix as JSON to this file")
		load       = fs.String("load", "", "render from a previously saved matrix instead of simulating")
		jobs       = fs.Int("j", 0, "matrix cells to simulate concurrently (0 = GOMAXPROCS)")
		traceOut   = fs.String("trace-out", "", "write the sweep as Chrome trace-event JSON (load at ui.perfetto.dev)")
		metrics    = fs.Bool("metrics", false, "print the pipeline metrics table to stderr after the run")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
		faultSeed  = fs.Int64("faults", 0, "arm the deterministic fault injector with this seed (0 = off)")
		faultRate  = fs.Float64("fault-rate", 0.5, "fraction of matrix cells armed for injection (with -faults)")
		checkpoint = fs.String("checkpoint", "", "journal completed cells to this file and resume from it")
		cellRetry  = fs.Int("cell-retries", 0, "re-attempts per failed cell under -faults (0 = default, negative = none)")
		clusters   = fs.String("cluster", "", "comma-separated cluster specs (NODESxFABRIC[@MEMGiB], e.g. 16x1GbE,49xFDR); arms the distributed algorithms")
		algs       = fs.String("algs", "", "comma-separated algorithms (default: paper's dense set; valid: "+strings.Join(workload.AlgorithmNames(), ", ")+")")
		plan       = fs.String("plan", "exhaustive", "sweep plan: "+strings.Join(workload.PlanNames(), ", ")+" (guided fits the energy model and predicts confident cells)")
		seedFrac   = fs.Float64("seed-frac", 0, "guided plan: target fraction of cells in the initial seed (0 = default)")
		confid     = fs.Float64("confidence", 0, "guided plan: widest acceptable relative CI before a cell must be measured (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "epscale: -j must be >= 0, got %d\n", *jobs)
		return 2
	}
	if !knownArtifact(*what) {
		fmt.Fprintf(stderr, "epscale: unknown artifact %q (valid: %s)\n", *what, strings.Join(artifactNames, ", "))
		return 2
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "epscale: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
		}
	}()

	// Study artifacts that do not need the 48-run matrix.
	if tbl := studyArtifact(*what, stderr); tbl != nil {
		return emit(tbl, *csv, stdout, stderr)
	}
	if *what == "fig2" {
		printFigure2(stdout)
		return 0
	}

	cfg := workload.PaperConfig()
	if *nodes < 1 {
		fmt.Fprintf(stderr, "epscale: -nodes must be >= 1, got %d\n", *nodes)
		return 2
	}
	if *nodes > 1 {
		cfg.Machine = hw.Cluster(cfg.Machine, *nodes)
	}
	if *quick {
		cfg.Sizes = []int{512, 1024}
	}
	if *sizes != "" {
		if cfg.Sizes, err = parseInts(*sizes); err != nil {
			fmt.Fprintf(stderr, "epscale: -sizes: %v\n", err)
			return 2
		}
	}
	if *threads != "" {
		if cfg.Threads, err = parseInts(*threads); err != nil {
			fmt.Fprintf(stderr, "epscale: -threads: %v\n", err)
			return 2
		}
		if max := cfg.Machine.Cores; maxOf(cfg.Threads) > max {
			fmt.Fprintf(stderr, "epscale: -threads %d exceeds the %d cores of %q\n",
				maxOf(cfg.Threads), max, cfg.Machine.Name)
			return 2
		}
	}
	if *what == "comm" && *clusters == "" && *load == "" {
		*clusters = "16x1GbE" // the comm artifact needs a cluster axis
	}
	if *algs != "" {
		if cfg.Algorithms, err = parseAlgorithms(*algs); err != nil {
			fmt.Fprintf(stderr, "epscale: -algs: %v\n", err)
			return 2
		}
	}
	if *clusters != "" {
		specs, err := parseClusters(*clusters)
		if err != nil {
			fmt.Fprintf(stderr, "epscale: -cluster: %v\n", err)
			return 2
		}
		cfg.Clusters = specs
		// An explicit -algs selection is taken as-is; otherwise a
		// cluster axis arms the distributed algorithms alongside the
		// paper's dense set.
		if *algs == "" {
			cfg.Algorithms = append(cfg.Algorithms, workload.DistributedAlgorithms()...)
		}
	}
	if cfg.Plan, err = workload.ParsePlan(*plan); err != nil {
		fmt.Fprintf(stderr, "epscale: -plan: %v\n", err)
		return 2
	}
	if *seedFrac < 0 || *seedFrac > 1 {
		fmt.Fprintf(stderr, "epscale: -seed-frac %g outside [0,1]\n", *seedFrac)
		return 2
	}
	if *confid < 0 {
		fmt.Fprintf(stderr, "epscale: -confidence must be >= 0, got %g\n", *confid)
		return 2
	}
	cfg.SeedFraction = *seedFrac
	cfg.Confidence = *confid
	if cfg.Plan == workload.PlanGuided {
		// Predicted cells carry no power trace and no fault exposure.
		switch {
		case *traceOut != "":
			fmt.Fprintln(stderr, "epscale: -plan guided cannot record traces (predicted cells have none); drop -trace-out")
			return 2
		case *faultSeed != 0:
			fmt.Fprintln(stderr, "epscale: -plan guided cannot run under fault injection; drop -faults")
			return 2
		}
	}
	cfg.DisableAffinity = *noAffinity
	cfg.DisableContention = *noContend
	cfg.Parallelism = *jobs
	cfg.MaxRetries = *cellRetry
	cfg.CheckpointPath = *checkpoint
	if *faultSeed != 0 {
		sch := faults.DefaultSchedule(*faultSeed)
		sch.CellFraction = *faultRate
		cfg.Faults = sch
		fmt.Fprintf(stderr, "epscale: fault injection armed (seed %d, %.0f%% of cells)\n",
			*faultSeed, 100**faultRate)
	}

	var spans *obs.Collector
	if *traceOut != "" {
		cfg.RecordTraces = true // the exporter needs per-run power traces
		spans = obs.Enable()
		defer obs.Disable()
	}

	var mx *workload.Matrix
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
			return 1
		}
		mx, err = workload.LoadJSON(f)
		_ = f.Close() // read-only; nothing buffered to lose
		if err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
			return 1
		}
		cfg = mx.Cfg
	} else {
		fmt.Fprintf(stderr, "epscale: running %d configurations on %q...\n",
			cfg.CellCount(), cfg.Machine.Name)
		mx = workload.Execute(cfg)
		if n := mx.RestoredCells(); n > 0 {
			fmt.Fprintf(stderr, "epscale: restored %d cell(s) from checkpoint %s\n", n, *checkpoint)
		}
		if cfg.Plan == workload.PlanGuided {
			fmt.Fprintf(stderr, "epscale: guided plan measured %d/%d cells (%d predicted, %d refit rounds)\n",
				mx.Planner.MeasuredCells, len(mx.Runs), mx.Planner.PredictedCells, mx.Planner.Rounds)
		}
	}
	if s := mx.DegradationSummary(); s != "" {
		fmt.Fprintf(stderr, "epscale: sweep degraded:\n%s", s)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
			return 1
		}
		if err := mx.SaveJSON(f); err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
			return 1
		}
		// A failed Close can mean the kernel never accepted the last
		// buffered bytes — a truncated matrix that would only surface
		// on the next -load. Surface it now.
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "epscale: saving matrix: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "epscale: saved matrix to %s\n", *save)
	}
	if *traceOut != "" {
		if err := writeMatrixTrace(*traceOut, mx, spans); err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "epscale: wrote trace to %s (load at ui.perfetto.dev)\n", *traceOut)
	}
	if *metrics {
		fmt.Fprint(stderr, report.MetricsTable().String())
	}

	tables := map[string]func() *report.Table{
		"table2":    func() *report.Table { return report.Table2(mx) },
		"table3":    func() *report.Table { return report.Table3(mx) },
		"table4":    func() *report.Table { return report.Table4(mx) },
		"fig1":      func() *report.Table { return report.Figure1(maxOf(cfg.Threads)) },
		"fig3":      func() *report.Table { return report.Figure3(mx) },
		"fig4":      func() *report.Table { return report.PowerScalingFigure(mx, workload.AlgOpenBLAS, 4) },
		"fig5":      func() *report.Table { return report.PowerScalingFigure(mx, workload.AlgStrassen, 5) },
		"fig6":      func() *report.Table { return report.PowerScalingFigure(mx, workload.AlgCAPS, 6) },
		"fig7":      func() *report.Table { return report.Figure7(mx) },
		"headlines": func() *report.Table { return report.Headlines(mx) },
		"breakdown": func() *report.Table {
			return report.BreakdownTable(mx, cfg.Sizes[len(cfg.Sizes)-1], maxOf(cfg.Threads))
		},
		"measurement": func() *report.Table { return report.MeasurementTable(mx) },
		"comm":        func() *report.Table { return report.CommTable(mx) },
	}

	if *chart {
		charts := map[string]func() *report.Chart{
			"fig3": func() *report.Chart { return report.SlowdownChart(mx) },
			"fig4": func() *report.Chart { return report.PowerScalingChart(mx, workload.AlgOpenBLAS, 4) },
			"fig5": func() *report.Chart { return report.PowerScalingChart(mx, workload.AlgStrassen, 5) },
			"fig6": func() *report.Chart { return report.PowerScalingChart(mx, workload.AlgCAPS, 6) },
			"fig7": func() *report.Chart {
				return report.ScalingChart(mx, cfg.Sizes[len(cfg.Sizes)-1])
			},
		}
		mk, ok := charts[*what]
		if !ok {
			fmt.Fprintf(stderr, "epscale: no chart for %q (use fig3..fig7)\n", *what)
			return 2
		}
		fmt.Fprint(stdout, mk().String())
		return 0
	}

	if *what == "all" {
		if *csv {
			fmt.Fprintln(stderr, "epscale: -csv requires a single -what artifact")
			return 2
		}
		fmt.Fprint(stdout, report.All(mx))
		return 0
	}
	if *what == "model" {
		return emitModel(mx, *csv, stdout, stderr)
	}
	mk, ok := tables[*what]
	if !ok {
		fmt.Fprintf(stderr, "epscale: unknown artifact %q (valid: %s)\n", *what, strings.Join(artifactNames, ", "))
		return 2
	}
	return emit(mk(), *csv, stdout, stderr)
}

// emitModel renders the fitted energy-complexity model: per-family fit
// quality, the platform coefficients, and the worst training rows. In
// CSV mode only the family-stats table is emitted.
func emitModel(mx *workload.Matrix, csv bool, stdout, stderr io.Writer) int {
	stats, err := report.ModelTable(mx)
	if err != nil {
		fmt.Fprintf(stderr, "epscale: model: %v\n", err)
		return 1
	}
	if csv {
		return emit(stats, true, stdout, stderr)
	}
	coefs, err := report.ModelCoefficientTable(mx)
	if err != nil {
		fmt.Fprintf(stderr, "epscale: model: %v\n", err)
		return 1
	}
	worst, err := report.ModelWorstTable(mx, 8)
	if err != nil {
		fmt.Fprintf(stderr, "epscale: model: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, stats.String(), "\n", coefs.String(), "\n", worst.String())
	return 0
}

func writeMatrixTrace(path string, mx *workload.Matrix, spans *obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteMatrixChromeTrace(f, mx, spans); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

func emit(tbl *report.Table, csv bool, stdout, stderr io.Writer) int {
	if csv {
		if err := tbl.WriteCSV(stdout); err != nil {
			fmt.Fprintf(stderr, "epscale: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, tbl.String())
	return 0
}

// printFigure2 renders the paper's Fig. 2 content — depth-first vs
// breadth-first CAPS traversal — as simulated schedule Gantt charts.
func printFigure2(w io.Writer) {
	m := hw.HaswellE31225()
	n := 512
	fmt.Fprintf(w, "Figure 2 — depth-first vs breadth-first CAPS traversal (%d², 4 workers):\n", n)
	for _, cutoff := range []int{-1, 2} {
		a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := caps.Build(m, c, a, b, 4, caps.Options{CutoffDepth: cutoff})
		res := sim.Run(m, root, sim.Config{Workers: 4, RecordSchedule: true})
		title := fmt.Sprintf("CAPS cutoff depth %d (%.4f s, %.0f%% busy)", cutoff, res.Makespan, 100*res.Utilization())
		if cutoff < 0 {
			title = fmt.Sprintf("pure DFS (%.4f s, %.0f%% busy)", res.Makespan, 100*res.Utilization())
		}
		g := &report.Gantt{Title: title, Workers: 4, Spans: res.Schedule}
		fmt.Fprintln(w, g.String())
	}
}

// studyArtifact produces the future-work and platform artifacts, which
// run their own experiments instead of the paper matrix.
func studyArtifact(what string, stderr io.Writer) *report.Table {
	switch what {
	case "future-dmm":
		c := cluster.TS140Cluster(49)
		fmt.Fprintln(stderr, "epscale: running distributed CAPS study (8192², up to 49 ranks)...")
		return report.DistributedStudyTable("CAPS", dmm.Study(c, "CAPS", 8192, 64, []int{1, 7, 49}))
	case "future-sparse":
		fmt.Fprintln(stderr, "epscale: running SpMV storage study (power-law 8192²)...")
		m := hw.HaswellE31225()
		a := sparse.PowerLaw(rand.New(rand.NewSource(42)), 8192, 16, 1.8)
		return report.SparseStudyTable(sparse.EnergyStudy(m, a, []int{1, 2, 3, 4}, 50))
	case "platforms":
		fmt.Fprintln(stderr, "epscale: running cross-platform sweep (2048²)...")
		return report.PlatformTable(workload.CrossPlatform(hw.Zoo(), 2048))
	default:
		return nil
	}
}

// parseClusters parses a comma-separated list of cluster specs
// ("16x1GbE,49xFDR@16") through cluster.ParseSpec.
func parseClusters(s string) ([]cluster.Spec, error) {
	var out []cluster.Spec
	for _, part := range strings.Split(s, ",") {
		spec, err := cluster.ParseSpec(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// parseAlgorithms parses a comma-separated list of algorithm names
// ("SpMV,CG") through workload.ParseAlgorithm, so the error lists
// every valid spelling.
func parseAlgorithms(s string) ([]workload.Algorithm, error) {
	var out []workload.Algorithm
	for _, part := range strings.Split(s, ",") {
		a, err := workload.ParseAlgorithm(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive integers,
// returning an error instead of exiting so the CLI boundary reports
// bad input uniformly.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func maxOf(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
