// Command epscale runs the paper's experiment matrix on the simulated
// platform and regenerates its tables and figures.
//
// Usage:
//
//	epscale                    # full 48-run matrix, all tables/figures
//	epscale -what table3       # one artifact
//	epscale -quick             # smaller matrix for a fast look
//	epscale -csv -what fig7    # CSV instead of aligned text
//	epscale -sizes 512,1024 -threads 1,2,3,4
//	epscale -ablate-affinity   # communication charging off
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"capscale/internal/caps"
	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/report"
	"capscale/internal/sim"
	"capscale/internal/sparse"
	"capscale/internal/workload"
)

func main() {
	var (
		what       = flag.String("what", "all", "artifact: all, table2, table3, table4, fig1, fig3..fig7, headlines, breakdown, measurement, future-dmm, future-sparse, platforms")
		quick      = flag.Bool("quick", false, "use a reduced matrix (sizes 512,1024; threads 1..4)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart      = flag.Bool("chart", false, "render figures as ASCII line charts (fig3..fig7)")
		sizes      = flag.String("sizes", "", "comma-separated problem sizes (default: paper's 512,1024,2048,4096)")
		threads    = flag.String("threads", "", "comma-separated thread counts (default: paper's 1,2,3,4)")
		noAffinity = flag.Bool("ablate-affinity", false, "disable affinity/communication charging")
		noContend  = flag.Bool("ablate-contention", false, "disable DRAM bandwidth contention")
		save       = flag.String("save", "", "save the executed matrix as JSON to this file")
		load       = flag.String("load", "", "render from a previously saved matrix instead of simulating")
		jobs       = flag.Int("j", 0, "matrix cells to simulate concurrently (0 = GOMAXPROCS)")
	)
	flag.Parse()

	// Study artifacts that do not need the 48-run matrix.
	if tbl := studyArtifact(*what); tbl != nil {
		emit(tbl, *csv)
		return
	}
	if *what == "fig2" {
		printFigure2()
		return
	}

	cfg := workload.PaperConfig()
	if *quick {
		cfg.Sizes = []int{512, 1024}
	}
	if *sizes != "" {
		cfg.Sizes = parseInts(*sizes)
	}
	if *threads != "" {
		cfg.Threads = parseInts(*threads)
	}
	cfg.DisableAffinity = *noAffinity
	cfg.DisableContention = *noContend
	cfg.Parallelism = *jobs

	var mx *workload.Matrix
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "epscale: %v\n", err)
			os.Exit(1)
		}
		mx, err = workload.LoadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "epscale: %v\n", err)
			os.Exit(1)
		}
		cfg = mx.Cfg
	} else {
		fmt.Fprintf(os.Stderr, "epscale: running %d configurations on %q...\n",
			len(cfg.Algorithms)*len(cfg.Sizes)*len(cfg.Threads), cfg.Machine.Name)
		mx = workload.Execute(cfg)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "epscale: %v\n", err)
			os.Exit(1)
		}
		if err := mx.SaveJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "epscale: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "epscale: saved matrix to %s\n", *save)
	}

	tables := map[string]func() *report.Table{
		"table2":    func() *report.Table { return report.Table2(mx) },
		"table3":    func() *report.Table { return report.Table3(mx) },
		"table4":    func() *report.Table { return report.Table4(mx) },
		"fig1":      func() *report.Table { return report.Figure1(maxOf(cfg.Threads)) },
		"fig3":      func() *report.Table { return report.Figure3(mx) },
		"fig4":      func() *report.Table { return report.PowerScalingFigure(mx, workload.AlgOpenBLAS, 4) },
		"fig5":      func() *report.Table { return report.PowerScalingFigure(mx, workload.AlgStrassen, 5) },
		"fig6":      func() *report.Table { return report.PowerScalingFigure(mx, workload.AlgCAPS, 6) },
		"fig7":      func() *report.Table { return report.Figure7(mx) },
		"headlines": func() *report.Table { return report.Headlines(mx) },
		"breakdown": func() *report.Table {
			return report.BreakdownTable(mx, cfg.Sizes[len(cfg.Sizes)-1], maxOf(cfg.Threads))
		},
		"measurement": func() *report.Table { return report.MeasurementTable(mx) },
	}

	if *chart {
		charts := map[string]func() *report.Chart{
			"fig3": func() *report.Chart { return report.SlowdownChart(mx) },
			"fig4": func() *report.Chart { return report.PowerScalingChart(mx, workload.AlgOpenBLAS, 4) },
			"fig5": func() *report.Chart { return report.PowerScalingChart(mx, workload.AlgStrassen, 5) },
			"fig6": func() *report.Chart { return report.PowerScalingChart(mx, workload.AlgCAPS, 6) },
			"fig7": func() *report.Chart {
				return report.ScalingChart(mx, cfg.Sizes[len(cfg.Sizes)-1])
			},
		}
		mk, ok := charts[*what]
		if !ok {
			fmt.Fprintf(os.Stderr, "epscale: no chart for %q (use fig3..fig7)\n", *what)
			os.Exit(2)
		}
		fmt.Print(mk().String())
		return
	}

	if *what == "all" {
		if *csv {
			fmt.Fprintln(os.Stderr, "epscale: -csv requires a single -what artifact")
			os.Exit(2)
		}
		fmt.Print(report.All(mx))
		return
	}
	mk, ok := tables[*what]
	if !ok {
		fmt.Fprintf(os.Stderr, "epscale: unknown artifact %q\n", *what)
		os.Exit(2)
	}
	emit(mk(), *csv)
}

func emit(tbl *report.Table, csv bool) {
	if csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "epscale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(tbl.String())
}

// printFigure2 renders the paper's Fig. 2 content — depth-first vs
// breadth-first CAPS traversal — as simulated schedule Gantt charts.
func printFigure2() {
	m := hw.HaswellE31225()
	n := 512
	fmt.Printf("Figure 2 — depth-first vs breadth-first CAPS traversal (%d², 4 workers):\n", n)
	for _, cutoff := range []int{-1, 2} {
		a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := caps.Build(m, c, a, b, 4, caps.Options{CutoffDepth: cutoff})
		res := sim.Run(m, root, sim.Config{Workers: 4, RecordSchedule: true})
		title := fmt.Sprintf("CAPS cutoff depth %d (%.4f s, %.0f%% busy)", cutoff, res.Makespan, 100*res.Utilization())
		if cutoff < 0 {
			title = fmt.Sprintf("pure DFS (%.4f s, %.0f%% busy)", res.Makespan, 100*res.Utilization())
		}
		g := &report.Gantt{Title: title, Workers: 4, Spans: res.Schedule}
		fmt.Println(g.String())
	}
}

// studyArtifact produces the future-work and platform artifacts, which
// run their own experiments instead of the paper matrix.
func studyArtifact(what string) *report.Table {
	switch what {
	case "future-dmm":
		c := cluster.TS140Cluster(49)
		fmt.Fprintln(os.Stderr, "epscale: running distributed CAPS study (8192², up to 49 ranks)...")
		return report.DistributedStudyTable("CAPS", dmm.Study(c, "CAPS", 8192, 64, []int{1, 7, 49}))
	case "future-sparse":
		fmt.Fprintln(os.Stderr, "epscale: running SpMV storage study (power-law 8192²)...")
		m := hw.HaswellE31225()
		a := sparse.PowerLaw(rand.New(rand.NewSource(42)), 8192, 16, 1.8)
		return report.SparseStudyTable(sparse.EnergyStudy(m, a, []int{1, 2, 3, 4}, 50))
	case "platforms":
		fmt.Fprintln(os.Stderr, "epscale: running cross-platform sweep (2048²)...")
		return report.PlatformTable(workload.CrossPlatform(hw.Zoo(), 2048))
	default:
		return nil
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "epscale: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func maxOf(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
