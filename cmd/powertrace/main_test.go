package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capscale/internal/obs"
)

// TestFlagValidation pins the CLI boundary: bad input produces a
// one-line usage error on stderr and a non-zero exit.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"zero n", []string{"-n", "0"}, "-n must be positive"},
		{"negative n", []string{"-n", "-64"}, "-n must be positive"},
		{"zero threads", []string{"-threads", "0"}, "-threads must be in 1.."},
		{"threads beyond cores", []string{"-threads", "99"}, "-threads must be in 1.."},
		{"zero interval", []string{"-interval", "0"}, "-interval must be positive"},
		{"negative jobs", []string{"-j", "-1"}, "-j must be >= 0"},
		{"unknown algorithm", []string{"-alg", "cannon", "-n", "64", "-threads", "1"}, "unknown algorithm"},
		{"algorithm error lists names", []string{"-alg", "cannon", "-n", "64", "-threads", "1"}, "SpMV"},
		{"zero nodes", []string{"-nodes", "0"}, "-nodes must be >= 1"},
		{"threads beyond cluster", []string{"-nodes", "2", "-threads", "9"}, "-threads must be in 1.."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("args %v: stderr %q lacks %q", tc.args, stderr.String(), tc.want)
			}
		})
	}
}

// TestSingleRunEmitsCSV exercises the default path end to end.
func TestSingleRunEmitsCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-alg", "openblas", "-n", "64", "-threads", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "t_s,") {
		t.Fatalf("stdout is not a power-trace CSV:\n%.120s", stdout.String())
	}
}

// TestSparseRunEmitsCSV: the sparse algorithms run through the same
// single-run path as the dense ones.
func TestSparseRunEmitsCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-alg", "spmv", "-n", "256", "-threads", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "t_s,") {
		t.Fatalf("stdout is not a power-trace CSV:\n%.120s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "SpMV") {
		t.Fatalf("stderr summary lacks the algorithm name:\n%s", stderr.String())
	}
}

// TestNodesRaisesThreadCeiling: -nodes clusters the machine, letting a
// run use more threads than one node has cores.
func TestNodesRaisesThreadCeiling(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-alg", "caps", "-n", "64", "-threads", "16", "-nodes", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "t_s,") {
		t.Fatalf("stdout is not a power-trace CSV:\n%.120s", stdout.String())
	}
}

// TestTraceOutWritesValidChromeTrace: the -trace-out artifact must
// pass the structural validator — the same check the trace-smoke
// script applies to the installed binary.
func TestTraceOutWritesValidChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-alg", "caps", "-n", "128", "-threads", "2", "-trace-out", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := obs.ValidateChromeTrace(f)
	if err != nil {
		t.Fatalf("-trace-out produced an invalid trace: %v", err)
	}
	for _, plane := range []string{"PKG W", "PP0 W", "DRAM W"} {
		if stats.CounterSamples[plane] == 0 {
			t.Fatalf("trace lacks RAPL counter track %q", plane)
		}
	}
	for _, key := range []string{"1/0", "1/1"} {
		if stats.SpansPerThread[key] == 0 {
			t.Fatalf("trace lacks worker track %s spans", key)
		}
	}
}
