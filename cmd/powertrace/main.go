// Command powertrace simulates one matrix-multiplication run and emits
// its sampled power trace as CSV (t_s, pkg_w, pp0_w, dram_w, total_w),
// the log a PAPI/RAPL poller would have produced on the paper's
// platform.
//
// Usage:
//
//	powertrace -alg caps -n 1024 -threads 4 -interval 0.001 > trace.csv
//	powertrace -alg caps -n 1024 -trace-out run.json >/dev/null
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"capscale/internal/cluster"
	"capscale/internal/faults"
	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable CLI body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powertrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		alg        = fs.String("alg", "openblas", "algorithm: "+strings.Join(workload.AlgorithmNames(), ", ")+" (distributed ones need -cluster)")
		n          = fs.Int("n", 1024, "square problem dimension")
		threads    = fs.Int("threads", 4, "thread count (1..4 on the paper's machine; -nodes raises the ceiling)")
		nodes      = fs.Int("nodes", 1, "replicate the machine across this many nodes (flat cluster)")
		interval   = fs.Float64("interval", 0.001, "sampling interval in seconds")
		session    = fs.Bool("session", false, "emit the whole 48-run experiment session (quick sizes) with 60s quiesce gaps instead of one run")
		jobs       = fs.Int("j", 0, "matrix cells to simulate concurrently in -session mode (0 = GOMAXPROCS)")
		traceOut   = fs.String("trace-out", "", "also write the run as Chrome trace-event JSON (load at ui.perfetto.dev)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
		faultSeed  = fs.Int64("faults", 0, "arm the deterministic fault injector with this seed (0 = off)")
		faultRate  = fs.Float64("fault-rate", 0.5, "fraction of session cells armed for injection (single runs are always armed)")
		checkpoint = fs.String("checkpoint", "", "journal completed session cells to this file and resume from it (requires -session)")
		cellRetry  = fs.Int("cell-retries", 0, "re-attempts per failed cell under -faults (0 = default, negative = none)")
		clusterStr = fs.String("cluster", "", "run the algorithm distributed on this cluster (NODESxFABRIC[@MEMGiB], e.g. 16x1GbE); requires a distributed -alg")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := workload.PaperConfig()
	if *nodes < 1 {
		fmt.Fprintf(stderr, "powertrace: -nodes must be >= 1, got %d\n", *nodes)
		return 2
	}
	if *nodes > 1 {
		cfg.Machine = hw.Cluster(cfg.Machine, *nodes)
	}
	switch {
	case *n <= 0:
		fmt.Fprintf(stderr, "powertrace: -n must be positive, got %d\n", *n)
		return 2
	case *threads < 1 || *threads > cfg.Machine.Cores:
		fmt.Fprintf(stderr, "powertrace: -threads must be in 1..%d on %q, got %d\n",
			cfg.Machine.Cores, cfg.Machine.Name, *threads)
		return 2
	case *interval <= 0:
		fmt.Fprintf(stderr, "powertrace: -interval must be positive, got %g\n", *interval)
		return 2
	case *jobs < 0:
		fmt.Fprintf(stderr, "powertrace: -j must be >= 0, got %d\n", *jobs)
		return 2
	case *checkpoint != "" && !*session:
		fmt.Fprintln(stderr, "powertrace: -checkpoint requires -session (single runs are not resumable)")
		return 2
	case *clusterStr != "" && *session:
		fmt.Fprintln(stderr, "powertrace: -cluster emits a single distributed run; drop -session")
		return 2
	}
	cfg.MaxRetries = *cellRetry
	if *faultSeed != 0 {
		sch := faults.DefaultSchedule(*faultSeed)
		if *session {
			sch.CellFraction = *faultRate
		} else {
			sch.CellFraction = 1 // the one run under test is the armed cell
		}
		cfg.Faults = sch
		fmt.Fprintf(stderr, "powertrace: fault injection armed (seed %d, %.0f%% of cells)\n",
			*faultSeed, 100*sch.CellFraction)
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "powertrace: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "powertrace: %v\n", err)
		}
	}()

	var spans *obs.Collector
	if *traceOut != "" {
		spans = obs.Enable()
		defer obs.Disable()
	}

	if *session {
		cfg.Sizes = []int{512, 1024} // keep the emitted CSV manageable
		cfg.RecordTraces = true
		cfg.TraceSampleInterval = *interval
		cfg.Parallelism = *jobs
		cfg.CheckpointPath = *checkpoint
		mx := workload.Execute(cfg)
		if n := mx.RestoredCells(); n > 0 {
			fmt.Fprintf(stderr, "powertrace: restored %d cell(s) from checkpoint %s\n", n, *checkpoint)
		}
		if s := mx.DegradationSummary(); s != "" {
			fmt.Fprintf(stderr, "powertrace: session degraded:\n%s", s)
		}
		tr := mx.SessionTrace()
		fmt.Fprintf(stderr, "powertrace: session of %d runs, %.1f s total\n", len(mx.Runs), tr.Duration())
		if *traceOut != "" {
			if err := writeTraceFile(*traceOut, func(w io.Writer) error {
				return workload.WriteMatrixChromeTrace(w, mx, spans)
			}); err != nil {
				fmt.Fprintf(stderr, "powertrace: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "powertrace: wrote trace to %s (load at ui.perfetto.dev)\n", *traceOut)
		}
		if err := tr.WriteCSV(stdout); err != nil {
			fmt.Fprintf(stderr, "powertrace: %v\n", err)
			return 1
		}
		return 0
	}

	a, err := workload.ParseAlgorithm(*alg)
	if err != nil {
		fmt.Fprintf(stderr, "powertrace: %v\n", err)
		return 2
	}
	if a.Distributed() != (*clusterStr != "") {
		if a.Distributed() {
			fmt.Fprintf(stderr, "powertrace: %v needs -cluster (e.g. -cluster 16x1GbE)\n", a)
		} else {
			fmt.Fprintf(stderr, "powertrace: -cluster needs a distributed -alg (summa, 2.5d, dstrassen, dcaps)\n")
		}
		return 2
	}

	cfg.RecordTraces = true
	cfg.RecordSchedule = *traceOut != "" && !a.Distributed() // the trace's worker tracks need leaf placement
	cfg.TraceSampleInterval = *interval
	var run workload.Run
	if a.Distributed() {
		spec, err := cluster.ParseSpec(*clusterStr)
		if err != nil {
			fmt.Fprintf(stderr, "powertrace: -cluster: %v\n", err)
			return 2
		}
		run = workload.ExecuteOneCluster(cfg, a, *n, spec)
	} else {
		run = workload.ExecuteOne(cfg, a, *n, *threads)
	}
	if run.Failed() {
		fmt.Fprintf(stderr, "powertrace: run FAILED after %d attempt(s): %s\n", run.Attempts, run.Err)
		return 1
	}

	if a.Distributed() {
		fmt.Fprintf(stderr, "powertrace: %v n=%d on %s (%d ranks): %.4fs, %.2f MB on the wire in %d messages, NIC %.2f J + switch %.2f J\n",
			a, *n, run.Cluster, run.Ranks, run.Seconds, run.WireBytes/1e6, run.Messages,
			run.NICJoules, run.SwitchJoules)
	} else {
		fmt.Fprintf(stderr, "powertrace: %v n=%d threads=%d: %.4fs, %.2f W avg (PKG %.2f + DRAM %.2f)\n",
			a, *n, *threads, run.Seconds, run.WattsTotal(), run.WattsPKG(), run.WattsDRAM())
	}
	fmt.Fprintf(stderr, "powertrace: monitor reconciled %d samples, max rel.err vs ground truth %.2e\n",
		run.MeasSamples, run.MeasurementErr())
	if run.Degraded {
		fmt.Fprintf(stderr, "powertrace: run degraded (%d read errors, %d dropped samples, quarantined: %s) — flagged figures are not clean measurements\n",
			run.MeasReadErrors, run.MeasDrops, strings.Join(run.QuarantinedPlanes, "+"))
	}
	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, func(w io.Writer) error {
			return workload.WriteRunChromeTrace(w, &run, spans)
		}); err != nil {
			fmt.Fprintf(stderr, "powertrace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "powertrace: wrote trace to %s (load at ui.perfetto.dev)\n", *traceOut)
	}
	if err := run.Trace.WriteCSV(stdout); err != nil {
		fmt.Fprintf(stderr, "powertrace: %v\n", err)
		return 1
	}
	return 0
}

func writeTraceFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
