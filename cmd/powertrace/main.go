// Command powertrace simulates one matrix-multiplication run and emits
// its sampled power trace as CSV (t_s, pkg_w, pp0_w, dram_w, total_w),
// the log a PAPI/RAPL poller would have produced on the paper's
// platform.
//
// Usage:
//
//	powertrace -alg caps -n 1024 -threads 4 -interval 0.001 > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"capscale/internal/workload"
)

func main() {
	var (
		alg      = flag.String("alg", "openblas", "algorithm: openblas, strassen, winograd, caps")
		n        = flag.Int("n", 1024, "square problem dimension")
		threads  = flag.Int("threads", 4, "thread count (1..4 on the paper's machine)")
		interval = flag.Float64("interval", 0.001, "sampling interval in seconds")
		session  = flag.Bool("session", false, "emit the whole 48-run experiment session (quick sizes) with 60s quiesce gaps instead of one run")
		jobs     = flag.Int("j", 0, "matrix cells to simulate concurrently in -session mode (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *session {
		cfg := workload.PaperConfig()
		cfg.Sizes = []int{512, 1024} // keep the emitted CSV manageable
		cfg.RecordTraces = true
		cfg.TraceSampleInterval = *interval
		cfg.Parallelism = *jobs
		mx := workload.Execute(cfg)
		tr := mx.SessionTrace()
		fmt.Fprintf(os.Stderr, "powertrace: session of %d runs, %.1f s total\n", len(mx.Runs), tr.Duration())
		if err := tr.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "powertrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	algs := map[string]workload.Algorithm{
		"openblas": workload.AlgOpenBLAS,
		"strassen": workload.AlgStrassen,
		"winograd": workload.AlgWinograd,
		"caps":     workload.AlgCAPS,
	}
	a, ok := algs[strings.ToLower(*alg)]
	if !ok {
		fmt.Fprintf(os.Stderr, "powertrace: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	cfg := workload.PaperConfig()
	cfg.RecordTraces = true
	cfg.TraceSampleInterval = *interval
	run := workload.ExecuteOne(cfg, a, *n, *threads)

	fmt.Fprintf(os.Stderr, "powertrace: %v n=%d threads=%d: %.4fs, %.2f W avg (PKG %.2f + DRAM %.2f)\n",
		a, *n, *threads, run.Seconds, run.WattsTotal(), run.WattsPKG(), run.WattsDRAM())
	fmt.Fprintf(os.Stderr, "powertrace: monitor reconciled %d samples, max rel.err vs ground truth %.2e\n",
		run.MeasSamples, run.MeasurementErr())
	if err := run.Trace.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "powertrace: %v\n", err)
		os.Exit(1)
	}
}
