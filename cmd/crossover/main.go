// Command crossover evaluates the paper's Eq. 9: the square-matrix
// dimension at which a Strassen technique breaks even with a tuned
// blocked multiply on a platform computing y MFlop/s and moving data
// at z MB/s (n = 480·y/z).
//
// Usage:
//
//	crossover                 # the paper's platform
//	crossover -y 23500 -z 7500
//	crossover -sweep          # sweep the compute/bandwidth balance
package main

import (
	"flag"
	"fmt"

	"capscale/internal/energy"
	"capscale/internal/hw"
	"capscale/internal/task"
)

func main() {
	var (
		y     = flag.Float64("y", 0, "platform compute rate in MFlop/s (0 = derive from the paper's machine)")
		z     = flag.Float64("z", 0, "platform data-movement rate in MB/s (0 = derive from the paper's machine)")
		sweep = flag.Bool("sweep", false, "sweep balance ratios around the platform point")
	)
	flag.Parse()

	m := hw.HaswellE31225()
	yv, zv := *y, *z
	if yv == 0 {
		// Whole-machine tuned DGEMM rate against aggregate memory
		// bandwidth. On the paper's platform this lands just above 4096
		// — consistent with its observation that the crossover was out
		// of reach at the largest runnable size.
		yv = m.PeakFlops() * m.Eff(task.KindGEMM) / 1e6
	}
	if zv == 0 {
		zv = m.DRAMBandwidth / 1e6
	}

	n := energy.Crossover(yv, zv)
	fmt.Printf("platform: y = %.0f MFlop/s, z = %.0f MB/s\n", yv, zv)
	fmt.Printf("Eq. 9 crossover: n = 480*y/z = %.0f\n", n)
	fmt.Printf("(problems with n above this favour Strassen-derived techniques)\n")

	if *sweep {
		fmt.Printf("\n%-12s %-12s %s\n", "y (MFlop/s)", "z (MB/s)", "crossover n")
		for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
			fmt.Printf("%-12.0f %-12.0f %.0f\n", yv*f, zv, energy.Crossover(yv*f, zv))
		}
		for _, f := range []float64{0.25, 0.5, 2, 4} {
			fmt.Printf("%-12.0f %-12.0f %.0f\n", yv, zv*f, energy.Crossover(yv, zv*f))
		}
	}
}
