// Command crossover evaluates the paper's Eq. 9: the square-matrix
// dimension at which a Strassen technique breaks even with a tuned
// blocked multiply on a platform computing y MFlop/s and moving data
// at z MB/s (n = 480·y/z).
//
// Usage:
//
//	crossover                 # the paper's platform
//	crossover -y 23500 -z 7500
//	crossover -sweep          # sweep the compute/bandwidth balance
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"capscale/internal/energy"
	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/task"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable CLI body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crossover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		y          = fs.Float64("y", 0, "platform compute rate in MFlop/s (0 = derive from the paper's machine)")
		z          = fs.Float64("z", 0, "platform data-movement rate in MB/s (0 = derive from the paper's machine)")
		sweep      = fs.Bool("sweep", false, "sweep balance ratios around the platform point")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *y < 0 || *z < 0 {
		fmt.Fprintf(stderr, "crossover: -y and -z must be >= 0, got y=%g z=%g\n", *y, *z)
		return 2
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "crossover: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "crossover: %v\n", err)
		}
	}()

	m := hw.HaswellE31225()
	yv, zv := *y, *z
	if yv == 0 {
		// Whole-machine tuned DGEMM rate against aggregate memory
		// bandwidth. On the paper's platform this lands just above 4096
		// — consistent with its observation that the crossover was out
		// of reach at the largest runnable size.
		yv = m.PeakFlops() * m.Eff(task.KindGEMM) / 1e6
	}
	if zv == 0 {
		zv = m.DRAMBandwidth / 1e6
	}

	n := energy.Crossover(yv, zv)
	fmt.Fprintf(stdout, "platform: y = %.0f MFlop/s, z = %.0f MB/s\n", yv, zv)
	fmt.Fprintf(stdout, "Eq. 9 crossover: n = 480*y/z = %.0f\n", n)
	fmt.Fprintf(stdout, "(problems with n above this favour Strassen-derived techniques)\n")

	if *sweep {
		fmt.Fprintf(stdout, "\n%-12s %-12s %s\n", "y (MFlop/s)", "z (MB/s)", "crossover n")
		for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
			fmt.Fprintf(stdout, "%-12.0f %-12.0f %.0f\n", yv*f, zv, energy.Crossover(yv*f, zv))
		}
		for _, f := range []float64{0.25, 0.5, 2, 4} {
			fmt.Fprintf(stdout, "%-12.0f %-12.0f %.0f\n", yv, zv*f, energy.Crossover(yv, zv*f))
		}
	}
	return 0
}
