package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"negative y", []string{"-y", "-1"}, "must be >= 0"},
		{"negative z", []string{"-z", "-0.5"}, "must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("args %v: stderr %q lacks %q", tc.args, stderr.String(), tc.want)
			}
		})
	}
}

func TestDefaultPlatformCrossover(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Eq. 9 crossover") {
		t.Fatalf("stdout lacks the crossover line:\n%s", stdout.String())
	}
}

func TestExplicitRates(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-y", "23500", "-z", "7500", "-sweep"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "crossover n") {
		t.Fatalf("sweep table missing:\n%s", stdout.String())
	}
}
