package main

import "net"

// newListener binds the address up front so run can report (and, in
// tests, hand out) the resolved port before serving — ":0" gets a
// real address instead of a blind race against the first request.
func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
