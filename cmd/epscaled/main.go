// Command epscaled serves the experiment pipeline over HTTP:
// sweep-as-a-service. POST /v1/sweep streams a sweep's cell records
// as NDJSON while it executes (identical concurrent requests attach
// to one execution); GET /v1/result/{fingerprint} replays a stored
// sweep byte-identically; GET /v1/status and /debug/vars expose the
// service and pipeline telemetry. See internal/serve.
//
// Usage:
//
//	epscaled [-addr :8080] [-store DIR] [-parallel N] [-id REPLICA]
//	         [-max-sweeps N] [-client-quota N] [-lease-ttl 5s]
//	         [-drain-timeout 30s]
//
// Multiple replicas may share one -store directory: on-disk leases
// (owner -id, monotonic epoch, -lease-ttl) give each sweep journal one
// writer at a time. A replica asked for a sweep another replica is
// executing follows its journal read-only; if the leaseholder dies,
// any replica takes the sweep over and resumes it. On startup the
// store is recovered: torn journal tails are salvaged and incomplete
// unleased sweeps with request sidecars resume automatically.
//
// On SIGINT/SIGTERM the server stops admitting work and drains
// in-flight sweeps up to -drain-timeout; at the deadline the sweeps
// are stopped at their next cell boundary instead, clients receive a
// resumable trailer, and every completed cell stays journaled in the
// store — interrupted sweeps resume where they stopped when
// re-requested (exactly, with ?from=<next_from>).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"capscale/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable body of main. When ready is non-nil it receives
// the bound listen address once the server is accepting requests.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("epscaled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	store := fs.String("store", "epscaled-store", "result store directory (one JSONL journal per sweep fingerprint)")
	parallel := fs.Int("parallel", 0, "cell workers per sweep (0 = all cores)")
	maxSweeps := fs.Int("max-sweeps", serve.DefaultMaxActiveSweeps, "max concurrently executing sweeps (further requests get 429)")
	clientQuota := fs.Int("client-quota", serve.DefaultClientQuota, "max open requests per client (X-Client-ID header; <0 disables)")
	replicaID := fs.String("id", "", "replica ID stamped on store leases (default host:pid)")
	leaseTTL := fs.Duration("lease-ttl", 0, "sweep journal lease lifetime between renewals (0 = library default)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight sweeps on shutdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "epscaled: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintln(stderr, "epscaled: -parallel must be >= 0")
		return 2
	}
	if *maxSweeps <= 0 {
		fmt.Fprintln(stderr, "epscaled: -max-sweeps must be positive")
		return 2
	}

	if *leaseTTL < 0 {
		fmt.Fprintln(stderr, "epscaled: -lease-ttl must be >= 0")
		return 2
	}

	srv, err := serve.New(serve.Config{
		StoreDir:        *store,
		Parallelism:     *parallel,
		MaxActiveSweeps: *maxSweeps,
		ClientQuota:     *clientQuota,
		ReplicaID:       *replicaID,
		LeaseTTL:        *leaseTTL,
	})
	if err != nil {
		fmt.Fprintf(stderr, "epscaled: %v\n", err)
		return 1
	}
	if resumed, salvaged := srv.Recover(func(format string, args ...any) {
		fmt.Fprintf(stdout, "epscaled: "+format+"\n", args...)
	}); resumed > 0 || salvaged > 0 {
		fmt.Fprintf(stdout, "epscaled: recovery: %d sweeps resumed, %d journals salvaged\n", resumed, salvaged)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	ln, err := newListener(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "epscaled: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "epscaled: replica %s serving on %s (store %s)\n", srv.ReplicaID(), ln.Addr(), *store)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "epscaled: serve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "epscaled: %v — draining (up to %s)\n", s, *drainTimeout)
	}

	// Stop accepting, let open streams finish, then drain the sweeps.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := srv.Drain(*drainTimeout)
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "epscaled: shutdown: %v\n", err)
	}
	if !drained {
		fmt.Fprintln(stdout, "epscaled: drain deadline — in-flight sweeps stopped at a cell boundary; completed cells are journaled and clients were told to resume (trailer resumable:true)")
		return 1
	}
	fmt.Fprintln(stdout, "epscaled: drained cleanly")
	return 0
}
