package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFlagValidation pins the CLI boundary: bad input produces a
// one-line usage error on stderr and a non-zero exit.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"negative parallel", []string{"-parallel", "-1"}, "-parallel must be >= 0"},
		{"zero max-sweeps", []string{"-max-sweeps", "0"}, "-max-sweeps must be positive"},
		{"stray argument", []string{"stray"}, "unexpected arguments"},
		{"empty store", []string{"-store", ""}, "empty store directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr, nil)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("args %v: stderr %q lacks %q", tc.args, stderr.String(), tc.want)
			}
		})
	}
}

// TestServeSweepAndDrain boots the daemon on an ephemeral port, runs
// one sweep over HTTP, then delivers SIGTERM and expects a clean
// drain.
func TestServeSweepAndDrain(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-store", store, "-drain-timeout", "10s"},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never came up; stderr:\n%s", stderr.String())
	}

	resp, err := http.Post("http://"+addr+"/v1/sweep", "application/json",
		strings.NewReader(`{"algorithms":["OpenBLAS"],"sizes":[64],"threads":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	records, sawTrailer := 0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Done     bool `json:"done"`
			Complete bool `json:"complete"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Done {
			sawTrailer = true
			if !probe.Complete {
				t.Fatalf("incomplete trailer: %s", sc.Text())
			}
		} else {
			records++
		}
	}
	resp.Body.Close()
	if records != 1 || !sawTrailer {
		t.Fatalf("streamed %d records (want 1), trailer=%v", records, sawTrailer)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("stdout lacks drain confirmation:\n%s", stdout.String())
	}
}
