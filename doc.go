// Package capscale reproduces "Communication Avoiding Power Scaling"
// (Chen & Leidel, ICPP Workshops 2015) as a from-scratch, stdlib-only
// Go system: the paper's energy-performance scaling model
// (internal/energy), its three matrix-multiplication test fixtures
// (internal/blas, internal/strassen, internal/caps) expressed as task
// trees (internal/task), a deterministic virtual-time scheduler with a
// calibrated power model (internal/sim, internal/hw), an emulated
// RAPL/PAPI measurement stack (internal/rapl, internal/papi), and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation (internal/workload, internal/report).
//
// The root package holds the benchmark harness: `go test -bench=.`
// regenerates the paper's Tables II–IV and Figures 1 and 3–7 alongside
// the published values, plus the ablations and future-work studies
// DESIGN.md indexes. See README.md for the tour and EXPERIMENTS.md for
// the paper-vs-measured record.
package capscale
