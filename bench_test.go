// Package capscale's benchmark harness regenerates every table and
// figure of the paper's evaluation (Tables II–IV, Figures 1 and 3–7),
// the Eq. 8/Eq. 9 model curves, and the ablations DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Each experiment bench prints its artifact once (with the paper's
// published values alongside where they exist) and reports the headline
// quantities as custom benchmark metrics.
package capscale

import (
	"fmt"
	"sync"
	"testing"

	"capscale/internal/caps"
	"capscale/internal/energy"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/report"
	"capscale/internal/sim"
	"capscale/internal/strassen"
	"capscale/internal/workload"
)

// The full 48-run matrix is executed once and shared by every bench.
var (
	matrixOnce sync.Once
	paperMx    *workload.Matrix
)

func paperMatrix(b *testing.B) *workload.Matrix {
	b.Helper()
	matrixOnce.Do(func() {
		paperMx = workload.Execute(workload.PaperConfig())
	})
	return paperMx
}

var printGates sync.Map

// printOnce emits an artifact exactly once per process, keyed by name,
// so repeated benchmark iterations stay quiet.
func printOnce(name string, artifacts ...fmt.Stringer) {
	if _, loaded := printGates.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Println()
	for _, a := range artifacts {
		fmt.Println(a.String())
	}
}

func avgOverSizes(mx *workload.Matrix, alg workload.Algorithm) float64 {
	sum := 0.0
	for _, n := range mx.Cfg.Sizes {
		sum += mx.AvgSlowdownAtSize(alg, n)
	}
	return sum / float64(len(mx.Cfg.Sizes))
}

func avgOverThreads(mx *workload.Matrix, alg workload.Algorithm) float64 {
	sum := 0.0
	for _, p := range mx.Cfg.Threads {
		sum += mx.AvgPowerAtThreads(alg, p)
	}
	return sum / float64(len(mx.Cfg.Threads))
}

// BenchmarkFigure1EnergyScalingConcept regenerates the conceptual
// ideal/superlinear chart of Fig. 1.
func BenchmarkFigure1EnergyScalingConcept(b *testing.B) {
	printOnce("fig1", report.Figure1(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = report.Figure1(4)
	}
}

// BenchmarkFigure2TreeTraversal reproduces the content of the paper's
// Fig. 2 — the contrast between depth-first and breadth-first CAPS
// traversal — as simulated schedule Gantt charts: pure DFS serializes
// the seven subproblems (work-shared additions between them), BFS runs
// them on disjoint owner subsets concurrently.
func BenchmarkFigure2TreeTraversal(b *testing.B) {
	m := hw.HaswellE31225()
	n := 512
	mk := func(cutoff int) (*sim.Result, *report.Gantt) {
		a, bb, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := caps.Build(m, c, a, bb, 4, caps.Options{CutoffDepth: cutoff})
		res := sim.Run(m, root, sim.Config{Workers: 4, RecordSchedule: true})
		title := fmt.Sprintf("CAPS cutoff depth %d (%.4f s, %.0f%% busy)", cutoff, res.Makespan, 100*res.Utilization())
		if cutoff < 0 {
			title = fmt.Sprintf("pure DFS (%.4f s, %.0f%% busy)", res.Makespan, 100*res.Utilization())
		}
		return res, &report.Gantt{Title: title, Workers: 4, Spans: res.Schedule}
	}
	if _, loaded := printGates.LoadOrStore("fig2", true); !loaded {
		fmt.Println("\nFigure 2 — depth-first vs breadth-first CAPS traversal (512², 4 workers):")
		_, dfs := mk(-1)
		fmt.Println(dfs.String())
		_, bfs := mk(2)
		fmt.Println(bfs.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := mk(2)
		_ = res
	}
}

// BenchmarkTable2SlowdownScaling regenerates Fig. 3 and Table II: the
// Strassen and CAPS slowdown versus OpenBLAS across the 48-run matrix.
func BenchmarkTable2SlowdownScaling(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("table2", report.Figure3(mx), report.Table2(mx))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.Table2(mx)
	}
	b.ReportMetric(avgOverSizes(mx, workload.AlgStrassen), "strassen-slowdown")
	b.ReportMetric(avgOverSizes(mx, workload.AlgCAPS), "caps-slowdown")
}

// BenchmarkFigure4OpenBLASPowerScaling regenerates Fig. 4.
func BenchmarkFigure4OpenBLASPowerScaling(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("fig4", report.PowerScalingFigure(mx, workload.AlgOpenBLAS, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.PowerScalingFigure(mx, workload.AlgOpenBLAS, 4)
	}
	b.ReportMetric(mx.AvgPowerAtThreads(workload.AlgOpenBLAS, 4), "watts-at-4t")
}

// BenchmarkFigure5StrassenPowerScaling regenerates Fig. 5.
func BenchmarkFigure5StrassenPowerScaling(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("fig5", report.PowerScalingFigure(mx, workload.AlgStrassen, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.PowerScalingFigure(mx, workload.AlgStrassen, 5)
	}
	b.ReportMetric(mx.AvgPowerAtThreads(workload.AlgStrassen, 4), "watts-at-4t")
}

// BenchmarkFigure6CAPSPowerScaling regenerates Fig. 6.
func BenchmarkFigure6CAPSPowerScaling(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("fig6", report.PowerScalingFigure(mx, workload.AlgCAPS, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.PowerScalingFigure(mx, workload.AlgCAPS, 6)
	}
	b.ReportMetric(mx.AvgPowerAtThreads(workload.AlgCAPS, 4), "watts-at-4t")
}

// BenchmarkTable3AveragePower regenerates Table III.
func BenchmarkTable3AveragePower(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("table3", report.Table3(mx))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.Table3(mx)
	}
	b.ReportMetric(avgOverThreads(mx, workload.AlgOpenBLAS), "openblas-watts")
	b.ReportMetric(avgOverThreads(mx, workload.AlgStrassen), "strassen-watts")
	b.ReportMetric(avgOverThreads(mx, workload.AlgCAPS), "caps-watts")
}

// BenchmarkTable4EnergyPerformance regenerates Table IV.
func BenchmarkTable4EnergyPerformance(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("table4", report.Table4(mx))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.Table4(mx)
	}
	b.ReportMetric(mx.AvgEPAtSize(workload.AlgOpenBLAS, 4096), "openblas-ep-4096")
	b.ReportMetric(mx.AvgEPAtSize(workload.AlgStrassen, 4096), "strassen-ep-4096")
	b.ReportMetric(mx.AvgEPAtSize(workload.AlgCAPS, 4096), "caps-ep-4096")
}

// BenchmarkFigure7EnergyPerformanceScaling regenerates Fig. 7 and the
// headline comparison table.
func BenchmarkFigure7EnergyPerformanceScaling(b *testing.B) {
	mx := paperMatrix(b)
	printOnce("fig7", report.Figure7(mx), report.Headlines(mx))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.Figure7(mx)
	}
	// Quantify the paper's qualitative claims: OpenBLAS superlinear,
	// Strassen-derived near linear, CAPS closest to the line.
	excess := func(alg workload.Algorithm) float64 {
		worst := 0.0
		for _, n := range mx.Cfg.Sizes {
			if e := mx.ScalingSeries(alg, n).MaxExcess(); e > worst {
				worst = e
			}
		}
		return worst
	}
	b.ReportMetric(excess(workload.AlgOpenBLAS), "openblas-max-excess")
	b.ReportMetric(excess(workload.AlgStrassen), "strassen-max-excess")
	b.ReportMetric(excess(workload.AlgCAPS), "caps-max-excess")
}

// BenchmarkEq8CommunicationBound evaluates the CAPS communication
// lower bound across a parameter sweep.
func BenchmarkEq8CommunicationBound(b *testing.B) {
	if _, loaded := printGates.LoadOrStore("eq8", true); !loaded {
		fmt.Println("\nEq. 8 — CAPS communication lower bound (words), n=4096:")
		fmt.Printf("%8s %12s %16s\n", "P", "M (words)", "bound")
		for _, p := range []float64{4, 49, 343, 2401} {
			for _, m := range []float64{1 << 16, 1 << 20} {
				fmt.Printf("%8.0f %12.0f %16.0f\n", p, m, energy.CommBound(4096, p, m))
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = energy.CommBound(4096, 49, 1<<20)
	}
}

// BenchmarkEq9Crossover evaluates the Strassen crossover model.
func BenchmarkEq9Crossover(b *testing.B) {
	m := hw.HaswellE31225()
	y := m.PeakFlops() * 0.92 / 1e6
	z := m.DRAMBandwidth / 1e6
	if _, loaded := printGates.LoadOrStore("eq9", true); !loaded {
		fmt.Printf("\nEq. 9 — crossover on the paper's platform: n = %.0f (paper: unreachable at 4096)\n",
			energy.Crossover(y, z))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = energy.Crossover(y, z)
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationCAPSCutoff sweeps the BFS/DFS cutoff depth the
// paper fixed at 4 after empirical testing.
func BenchmarkAblationCAPSCutoff(b *testing.B) {
	m := hw.HaswellE31225()
	n := 2048
	run := func(depth int) *sim.Result {
		a, bb, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := caps.Build(m, c, a, bb, 4, caps.Options{CutoffDepth: depth})
		return sim.Run(m, root, sim.Config{Workers: 4})
	}
	if _, loaded := printGates.LoadOrStore("ablate-cutoff", true); !loaded {
		fmt.Println("\nAblation — CAPS BFS/DFS cutoff depth (2048, 4 threads):")
		fmt.Printf("%8s %12s %10s %14s %14s\n", "cutoff", "time (s)", "watts", "remote (MB)", "bufpeak (MB)")
		for _, d := range []int{-1, 1, 2, 3, 4, 5} {
			r := run(d)
			label := d
			if d == -1 {
				label = 0
			}
			fmt.Printf("%8d %12.4f %10.2f %14.2f %14.2f\n",
				label, r.Makespan, r.AvgPowerTotal(), r.RemoteBytes/1e6, r.AllocHighWater/1e6)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(4)
	}
}

// BenchmarkAblationStrassenCutover sweeps the dense-solver cutover the
// paper fixed at N ≤ 64.
func BenchmarkAblationStrassenCutover(b *testing.B) {
	m := hw.HaswellE31225()
	n := 2048
	run := func(cut int) *sim.Result {
		a, bb, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := strassen.Build(m, c, a, bb, 4, strassen.Options{Cutover: cut})
		return sim.Run(m, root, sim.Config{Workers: 4})
	}
	if _, loaded := printGates.LoadOrStore("ablate-cutover", true); !loaded {
		fmt.Println("\nAblation — Strassen dense-solver cutover (2048, 4 threads):")
		fmt.Printf("%8s %12s %10s %10s\n", "cutover", "time (s)", "watts", "leaves")
		for _, cut := range []int{16, 32, 64, 128, 256} {
			r := run(cut)
			fmt.Printf("%8d %12.4f %10.2f %10d\n", cut, r.Makespan, r.AvgPowerTotal(), r.Leaves)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(64)
	}
}

// BenchmarkAblationAffinity disables the affinity/communication model:
// without it the CAPS-vs-Strassen distinction collapses.
func BenchmarkAblationAffinity(b *testing.B) {
	m := hw.HaswellE31225()
	n := 2048
	run := func(alg workload.Algorithm, disable bool) *sim.Result {
		root := workload.BuildTree(m, alg, n, 4)
		return sim.Run(m, root, sim.Config{Workers: 4, DisableAffinity: disable})
	}
	if _, loaded := printGates.LoadOrStore("ablate-affinity", true); !loaded {
		fmt.Println("\nAblation — communication (affinity) model on/off (2048, 4 threads):")
		fmt.Printf("%10s %14s %14s %16s\n", "algorithm", "T with (s)", "T without (s)", "gap explained")
		for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
			with := run(alg, false)
			without := run(alg, true)
			fmt.Printf("%10v %14.4f %14.4f %15.1f%%\n",
				alg, with.Makespan, without.Makespan,
				100*(with.Makespan-without.Makespan)/with.Makespan)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(workload.AlgStrassen, true)
	}
}

// BenchmarkAblationContention disables DRAM bandwidth arbitration:
// without it OpenBLAS's power curve loses its sublinear bend at large
// sizes and the Strassen adds stop serializing.
func BenchmarkAblationContention(b *testing.B) {
	m := hw.HaswellE31225()
	n := 2048
	run := func(alg workload.Algorithm, disable bool) *sim.Result {
		root := workload.BuildTree(m, alg, n, 4)
		return sim.Run(m, root, sim.Config{Workers: 4, DisableContention: disable})
	}
	if _, loaded := printGates.LoadOrStore("ablate-contention", true); !loaded {
		fmt.Println("\nAblation — DRAM contention model on/off (2048, 4 threads):")
		fmt.Printf("%10s %14s %14s\n", "algorithm", "T with (s)", "T without (s)")
		for _, alg := range workload.PaperAlgorithms() {
			with := run(alg, false)
			without := run(alg, true)
			fmt.Printf("%10v %14.4f %14.4f\n", alg, with.Makespan, without.Makespan)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(workload.AlgStrassen, true)
	}
}

// BenchmarkAblationWinograd compares the classic 18-addition Strassen
// recombination (the paper's Eq. 7) against the 15-addition
// Strassen-Winograd variant across sizes — the extension the
// algorithm's name in the paper points at.
func BenchmarkAblationWinograd(b *testing.B) {
	m := hw.HaswellE31225()
	run := func(n int, winograd bool) *sim.Result {
		a, bb, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := strassen.Build(m, c, a, bb, 4, strassen.Options{Winograd: winograd})
		return sim.Run(m, root, sim.Config{Workers: 4})
	}
	if _, loaded := printGates.LoadOrStore("ablate-winograd", true); !loaded {
		fmt.Println("\nAblation — classic Strassen vs Strassen-Winograd (4 threads):")
		fmt.Printf("%8s %14s %14s %10s\n", "N", "classic (s)", "winograd (s)", "gain")
		for _, n := range []int{512, 1024, 2048, 4096} {
			tc := run(n, false).Makespan
			tw := run(n, true).Makespan
			fmt.Printf("%8d %14.4f %14.4f %9.2f%%\n", n, tc, tw, 100*(tc-tw)/tc)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(2048, true)
	}
}

// BenchmarkSimulatorThroughput measures the virtual-time executor
// itself: leaves scheduled per second on the biggest tree of the
// matrix (Strassen at 4096).
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := hw.HaswellE31225()
	root := workload.BuildTree(m, workload.AlgStrassen, 4096, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(m, root, sim.Config{Workers: 4})
		b.ReportMetric(float64(res.Leaves), "leaves/op")
	}
}
