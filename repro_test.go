package capscale

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/energy"
	"capscale/internal/model"
	"capscale/internal/report"
	"capscale/internal/stats"
	"capscale/internal/workload"
)

// The integration tests assert the paper's qualitative findings on a
// real execution of the experiment matrix. Under -short a reduced
// matrix (without the 4096 column) keeps the suite fast; the full
// matrix is shared with the benchmark harness.
var (
	shortOnce sync.Once
	shortMx   *workload.Matrix
)

func testMatrix(t *testing.T) *workload.Matrix {
	t.Helper()
	if testing.Short() {
		shortOnce.Do(func() {
			cfg := workload.PaperConfig()
			cfg.Sizes = []int{512, 1024, 2048}
			shortMx = workload.Execute(cfg)
		})
		return shortMx
	}
	matrixOnce.Do(func() {
		paperMx = workload.Execute(workload.PaperConfig())
	})
	return paperMx
}

func TestReproOpenBLASFastestEverywhere(t *testing.T) {
	mx := testMatrix(t)
	for _, n := range mx.Cfg.Sizes {
		for _, p := range mx.Cfg.Threads {
			base := mx.Get(workload.AlgOpenBLAS, n, p).Seconds
			for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
				if mx.Get(alg, n, p).Seconds <= base {
					t.Errorf("n=%d p=%d: %v not slower than OpenBLAS", n, p, alg)
				}
			}
		}
	}
}

func TestReproSlowdownMagnitudes(t *testing.T) {
	// Paper: Strassen ≈ 2.97×, CAPS ≈ 2.79× on average; require the
	// same order and a ±25% band around the published averages.
	mx := testMatrix(t)
	str, caps := 0.0, 0.0
	for _, n := range mx.Cfg.Sizes {
		str += mx.AvgSlowdownAtSize(workload.AlgStrassen, n)
		caps += mx.AvgSlowdownAtSize(workload.AlgCAPS, n)
	}
	str /= float64(len(mx.Cfg.Sizes))
	caps /= float64(len(mx.Cfg.Sizes))
	if stats.RelErr(str, 2.965) > 0.25 {
		t.Errorf("Strassen avg slowdown %.3f outside ±25%% of paper's 2.965", str)
	}
	if stats.RelErr(caps, 2.788) > 0.25 {
		t.Errorf("CAPS avg slowdown %.3f outside ±25%% of paper's 2.788", caps)
	}
	if caps >= str {
		t.Errorf("CAPS (%.3f) not faster than Strassen (%.3f) on average", caps, str)
	}
	// CAPS's edge should be in single-digit percent, as the paper's
	// 5.97% is.
	if gain := str/caps - 1; gain < 0.01 || gain > 0.15 {
		t.Errorf("CAPS performance gain %.1f%% implausible vs paper's 5.97%%", gain*100)
	}
}

func TestReproPowerOrderingAtScale(t *testing.T) {
	mx := testMatrix(t)
	top := mx.Cfg.Threads[len(mx.Cfg.Threads)-1]
	// OpenBLAS draws the most at full threads (paper Figs. 4–6).
	for _, n := range mx.Cfg.Sizes {
		pb := mx.Get(workload.AlgOpenBLAS, n, top).WattsTotal()
		for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
			if mx.Get(alg, n, top).WattsTotal() >= pb {
				t.Errorf("n=%d: %v power not under OpenBLAS at %d threads", n, alg, top)
			}
		}
	}
	// CAPS above Strassen at the top thread counts (paper Table III).
	for _, n := range mx.Cfg.Sizes {
		if mx.Get(workload.AlgCAPS, n, top).WattsTotal() <= mx.Get(workload.AlgStrassen, n, top).WattsTotal() {
			t.Errorf("n=%d: CAPS power not above Strassen at %d threads", n, top)
		}
	}
}

func TestReproPowerGrowthContrast(t *testing.T) {
	// The central contrast: OpenBLAS's 1→4-thread power growth far
	// exceeds the Strassen-derived algorithms'.
	mx := testMatrix(t)
	growth := func(alg workload.Algorithm) float64 {
		return mx.AvgPowerAtThreads(alg, 4) / mx.AvgPowerAtThreads(alg, 1)
	}
	gb, gs, gc := growth(workload.AlgOpenBLAS), growth(workload.AlgStrassen), growth(workload.AlgCAPS)
	if gb < 2.0 {
		t.Errorf("OpenBLAS power growth %.2fx too flat", gb)
	}
	if gs > 1.8 || gc > 1.9 {
		t.Errorf("Strassen/CAPS power growth %.2fx/%.2fx not sublinear", gs, gc)
	}
}

func TestReproFigure7Classification(t *testing.T) {
	mx := testMatrix(t)
	maxP := mx.Cfg.Threads[len(mx.Cfg.Threads)-1]
	for _, n := range mx.Cfg.Sizes {
		// OpenBLAS superlinear by a wide margin.
		sb := mx.ScalingSeries(workload.AlgOpenBLAS, n)
		if sb.WorstClass() != energy.Superlinear {
			t.Errorf("n=%d: OpenBLAS not superlinear", n)
		}
		if sb.MaxExcess() < 2 {
			t.Errorf("n=%d: OpenBLAS excess %.2f too small", n, sb.MaxExcess())
		}
		// Strassen-derived: on or near the line (excess well under 1).
		for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
			s := mx.ScalingSeries(alg, n)
			if s.MaxExcess() > 0.6 {
				t.Errorf("n=%d: %v excess %.2f not near-ideal", n, alg, s.MaxExcess())
			}
			if s.S[len(s.S)-1] > float64(maxP)+0.5 {
				t.Errorf("n=%d: %v S(%d)=%.2f far above linear", n, alg, maxP, s.S[len(s.S)-1])
			}
		}
	}
}

func TestReproCAPSCloserToLinearThanStrassen(t *testing.T) {
	// The paper's claim is about the whole Fig. 7: across the figure,
	// CAPS sits closer to the linear scale than classic Strassen. (At
	// the smallest size the two are within noise of each other, so the
	// comparison is made over the figure, not per cell.)
	mx := testMatrix(t)
	dc, ds := 0.0, 0.0
	for _, n := range mx.Cfg.Sizes {
		dc += mx.ScalingSeries(workload.AlgCAPS, n).MeanDistanceToLinear()
		ds += mx.ScalingSeries(workload.AlgStrassen, n).MeanDistanceToLinear()
	}
	if dc >= ds {
		t.Errorf("CAPS mean distance to linear %.3f not under Strassen's %.3f", dc, ds)
	}
}

func TestReproCommunicationMechanism(t *testing.T) {
	// CAPS must charge dramatically less remote traffic than Strassen
	// at full threads — the paper's causal mechanism.
	mx := testMatrix(t)
	top := mx.Cfg.Threads[len(mx.Cfg.Threads)-1]
	for _, n := range mx.Cfg.Sizes {
		rs := mx.Get(workload.AlgStrassen, n, top).RemoteBytes
		rc := mx.Get(workload.AlgCAPS, n, top).RemoteBytes
		if rc >= rs/2 {
			t.Errorf("n=%d: CAPS remote bytes %.0f not well under Strassen's %.0f", n, rc, rs)
		}
	}
}

func TestReproStrassenBufferPressure(t *testing.T) {
	// The paper could not run beyond 4096 because of Strassen-derived
	// intermediate buffers; verify the simulated buffer high-water for
	// Strassen/CAPS dwarfs OpenBLAS's.
	mx := testMatrix(t)
	n := mx.Cfg.Sizes[len(mx.Cfg.Sizes)-1]
	top := mx.Cfg.Threads[len(mx.Cfg.Threads)-1]
	base := mx.Get(workload.AlgOpenBLAS, n, top).AllocHighWater
	for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
		if mx.Get(alg, n, top).AllocHighWater <= 10*base {
			t.Errorf("%v buffer high-water not far above OpenBLAS", alg)
		}
	}
}

func TestReproEnergyPerformanceOrdering(t *testing.T) {
	// Table IV ordering: OpenBLAS ≫ CAPS > Strassen at every size.
	mx := testMatrix(t)
	for _, n := range mx.Cfg.Sizes {
		eb := mx.AvgEPAtSize(workload.AlgOpenBLAS, n)
		es := mx.AvgEPAtSize(workload.AlgStrassen, n)
		ec := mx.AvgEPAtSize(workload.AlgCAPS, n)
		if !(eb > ec && ec > es) {
			t.Errorf("n=%d: EP ordering broken: OpenBLAS %.2f, CAPS %.2f, Strassen %.2f", n, eb, ec, es)
		}
	}
}

func TestReproStrassenAddTimeShareGrowsWithThreads(t *testing.T) {
	// The mechanism behind the flat power curves: Strassen's additions
	// are bandwidth-bound, so under contention their share of busy time
	// grows with thread count while the compute-bound base multiplies
	// shrink relatively.
	mx := testMatrix(t)
	n := mx.Cfg.Sizes[len(mx.Cfg.Sizes)-1]
	share := func(threads int) float64 {
		r := mx.Get(workload.AlgStrassen, n, threads)
		total := 0.0
		for _, v := range r.BusyByKind {
			total += v
		}
		return r.BusyByKind["add"] / total
	}
	s1, s4 := share(1), share(mx.Cfg.Threads[len(mx.Cfg.Threads)-1])
	if s4 <= s1 {
		t.Fatalf("add-time share did not grow under contention: %v -> %v", s1, s4)
	}
}

func TestReproCAPSCopyOverheadVisible(t *testing.T) {
	// CAPS pays staging copies Strassen does not — the BFS memory
	// tradeoff the paper describes.
	mx := testMatrix(t)
	n := mx.Cfg.Sizes[len(mx.Cfg.Sizes)-1]
	caps := mx.Get(workload.AlgCAPS, n, 4)
	str := mx.Get(workload.AlgStrassen, n, 4)
	if caps.BusyByKind["copy"] <= 0 {
		t.Fatal("CAPS shows no copy time")
	}
	if str.BusyByKind["copy"] > 0 {
		t.Fatal("Strassen unexpectedly shows copy time")
	}
}

func TestReproMeasurementReconciles(t *testing.T) {
	// Every run's energy figures now come from the polling monitor, not
	// the simulator's oracle. The two must agree: at the default poll
	// interval no 32-bit counter wrap can be missed, so the residual
	// per-plane error is counter quantization plus float accumulation
	// noise — a few 15 µJ quanta, with 1 mJ as a generous ceiling. A
	// larger error means wrap loss (~65 kJ per missed wrap) or a broken
	// sampling path.
	mx := testMatrix(t)
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.TruthPKGJoules <= 0 {
			t.Errorf("%v n=%d p=%d: no ground truth recorded", r.Alg, r.N, r.Threads)
			continue
		}
		if e := r.MeasurementAbsErr(); e > 1e-3 {
			t.Errorf("%v n=%d p=%d: measurement abs.err %.3e J vs ground truth (PKG %.6f/%.6f J)",
				r.Alg, r.N, r.Threads, e, r.PKGJoules, r.TruthPKGJoules)
		}
		// Runs longer than the poll interval must have been sampled
		// mid-run, not just at Stop.
		if r.Seconds > workload.DefaultPollInterval && r.MeasSamples < 2 {
			t.Errorf("%v n=%d p=%d: %.4f s run but only %d monitor samples — poller not firing",
				r.Alg, r.N, r.Threads, r.Seconds, r.MeasSamples)
		}
	}
}

func TestReproCommVolumeWithinBound(t *testing.T) {
	// The communication gate: every distributed run that puts traffic
	// on the wire must move at least the family-matching lower bound —
	// Ballard–Demmel for the classic algorithms, the paper's Eq. 8 for
	// the Strassen-like ones — and stay within a fixed constant factor
	// of it at the tested coordinates. The constants are analytic, not
	// tuned: SUMMA moves ~2n²/√P words per rank (2·P^(1/6) over the
	// memory-independent classic term, ≈3.2 at P=16); CAPS sums
	// (18/4)·(7/4)^(l-1)·n²/P per BFS level, ≤6× the Eq. 8 term at any
	// P = 7^k (≈4.0 at P=49). A ratio under 1 means the rank program
	// under-charges communication (the bug this gate was built to
	// catch); one above the ceiling means it stopped being
	// communication-avoiding.
	const maxRatio = 6.0
	var specs []cluster.Spec
	for _, s := range []string{"16x1GbE", "49xFDR"} {
		spec, err := cluster.ParseSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	cfg := workload.PaperConfig()
	cfg.Algorithms = []workload.Algorithm{workload.AlgSUMMA, workload.AlgDistCAPS}
	cfg.Sizes = []int{512, 1024}
	cfg.Clusters = specs
	mx := workload.Execute(cfg)

	bounded := 0
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Failed() {
			t.Fatalf("%v n=%d on %s failed: %s", r.Alg, r.N, r.Cluster, r.Err)
		}
		if r.Ranks <= 1 || r.WireBytes <= 0 {
			continue // node-local: the distributed-data bounds do not apply
		}
		spec, err := cluster.ParseSpec(r.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		words := report.CommWordsPerRank(r)
		bound := report.CommLowerBound(r.Alg, r.N, r.Ranks, spec.MemPerNode/8)
		ratio := words / bound
		if ratio < 1 {
			t.Errorf("%v n=%d P=%d on %s: measured %.0f words/rank BELOW the lower bound %.0f (ratio %.2f)",
				r.Alg, r.N, r.Ranks, r.Cluster, words, bound, ratio)
		}
		if ratio > maxRatio {
			t.Errorf("%v n=%d P=%d on %s: measured %.0f words/rank is %.2f× the bound %.0f (ceiling %g)",
				r.Alg, r.N, r.Ranks, r.Cluster, words, ratio, bound, maxRatio)
		}
		bounded++
	}
	if bounded < 4 {
		t.Fatalf("only %d distributed runs put traffic on the wire — the gate is vacuous", bounded)
	}
}

// TestReproModelPredictsSweep: the energy-complexity model fitted on
// the paper matrix's grid corners — at most a quarter of the full
// 48-cell matrix — predicts every held-out cell's energy within 15%
// and reproduces the paper's EP crossover ordering (Table IV:
// OpenBLAS > CAPS > Strassen) from predictions alone.
func TestReproModelPredictsSweep(t *testing.T) {
	mx := testMatrix(t)
	obs := mx.ModelObservations()
	sizes := mx.Cfg.Sizes
	minN, maxN := sizes[0], sizes[len(sizes)-1]
	threads := mx.Cfg.Threads
	minP, maxP := threads[0], threads[len(threads)-1]

	cornerKeys := map[string]bool{}
	for _, a := range mx.Cfg.Algorithms {
		for _, n := range []int{minN, maxN} {
			for _, p := range []int{minP, maxP} {
				cornerKeys[fmt.Sprintf("%v/%d/%d", a, n, p)] = true
			}
		}
	}
	corner := func(o model.Obs) bool { return cornerKeys[o.Key] }
	var train []model.Obs
	for _, o := range obs {
		if corner(o) {
			train = append(train, o)
		}
	}
	// The budget is a quarter of the FULL paper matrix (48 cells), even
	// when -short trims a size column from the measured one.
	paper := workload.PaperConfig()
	if full := len(paper.Algorithms) * len(paper.Sizes) * len(paper.Threads); 4*len(train) > full {
		t.Fatalf("training set %d exceeds 25%% of the %d-cell paper matrix", len(train), full)
	}
	mo, err := model.Fit(mx.Cfg.Machine, train)
	if err != nil {
		t.Fatal(err)
	}

	// Every held-out cell's energy within 15% of the measurement.
	predEP := map[string]float64{}
	measEP := map[string]float64{}
	for _, o := range obs {
		p, err := mo.Predict(o.Terms)
		if err != nil {
			t.Fatalf("%s: %v", o.Key, err)
		}
		predEP[o.Key] = (p.PKGJ + p.DRAMJ) / (p.Seconds * p.Seconds)
		measEP[o.Key] = (o.PKGJ + o.DRAMJ) / (o.Seconds * o.Seconds)
		if corner(o) {
			continue
		}
		gotE, wantE := p.PKGJ+p.DRAMJ, o.PKGJ+o.DRAMJ
		if rel := math.Abs(gotE-wantE) / wantE; rel > 0.15 {
			t.Errorf("%s: predicted %.3f J vs measured %.3f J (%.1f%% off)", o.Key, gotE, wantE, 100*rel)
		}
	}

	// Table IV's EP ordering must fall out of the predictions wherever
	// the measurement is decisive. EP = E/T² compounds the energy and
	// time errors, so a measured gap inside that band proves nothing
	// either way — each pairwise order is enforced only where the
	// measured ratio clears a 20% margin.
	key := func(a workload.Algorithm, n, p int) string { return fmt.Sprintf("%v/%d/%d", a, n, p) }
	pairs := [][2]workload.Algorithm{
		{workload.AlgOpenBLAS, workload.AlgCAPS},
		{workload.AlgOpenBLAS, workload.AlgStrassen},
		{workload.AlgCAPS, workload.AlgStrassen},
	}
	enforced := 0
	for _, n := range sizes {
		for _, p := range threads {
			for _, pr := range pairs {
				hi, lo := key(pr[0], n, p), key(pr[1], n, p)
				if measEP[hi] <= 1.20*measEP[lo] {
					continue
				}
				enforced++
				if predEP[hi] <= predEP[lo] {
					t.Errorf("n=%d p=%d: predicted EP puts %v (%.2f) at or below %v (%.2f) against the measured order",
						n, p, pr[0], predEP[hi], pr[1], predEP[lo])
				}
			}
		}
	}
	if enforced < len(sizes)*len(threads) {
		t.Fatalf("only %d decisive EP orderings — the crossover gate is vacuous", enforced)
	}

	// The CAPS/Strassen crossover itself: measured, Strassen wins EP at
	// one thread and CAPS wins from two threads up. The predictions
	// must move the EP ratio in the same direction at every size even
	// where the endpoints are too close to call individually.
	for _, n := range sizes {
		measTrend := measEP[key(workload.AlgCAPS, n, maxP)]/measEP[key(workload.AlgStrassen, n, maxP)] -
			measEP[key(workload.AlgCAPS, n, minP)]/measEP[key(workload.AlgStrassen, n, minP)]
		predTrend := predEP[key(workload.AlgCAPS, n, maxP)]/predEP[key(workload.AlgStrassen, n, maxP)] -
			predEP[key(workload.AlgCAPS, n, minP)]/predEP[key(workload.AlgStrassen, n, minP)]
		if measTrend <= 0 {
			t.Errorf("n=%d: measured CAPS/Strassen EP ratio does not rise with threads (%.3f)", n, measTrend)
		}
		if predTrend <= 0 {
			t.Errorf("n=%d: predicted CAPS/Strassen EP ratio trend %.3f contradicts the measured crossover", n, predTrend)
		}
	}
}

func TestReproDeterminism(t *testing.T) {
	// The virtual-time pipeline is bit-for-bit deterministic.
	cfg := workload.SmokeConfig()
	a := workload.ExecuteOne(cfg, workload.AlgCAPS, 256, 2)
	b := workload.ExecuteOne(cfg, workload.AlgCAPS, 256, 2)
	if a.Seconds != b.Seconds || a.PKGJoules != b.PKGJoules || a.RemoteBytes != b.RemoteBytes {
		t.Fatal("two identical runs differ")
	}
}
