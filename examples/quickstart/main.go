// Quickstart: multiply two matrices with all three of the paper's
// algorithms — once for real (checking the results agree) and once on
// the simulated Haswell platform (reporting time, power and the Eq. 1
// energy-performance ratio).
package main

import (
	"fmt"
	"math/rand"

	"capscale/internal/blas"
	"capscale/internal/caps"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/sched"
	"capscale/internal/sim"
	"capscale/internal/strassen"
	"capscale/internal/task"
	"capscale/internal/workload"
)

func main() {
	const n = 256
	const threads = 4
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(1))
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)

	// Reference product.
	want := matrix.New(n, n)
	matrix.MulNaive(want, a, b)

	// 1. Real execution: build each algorithm's task tree with math
	// attached and run it on the goroutine pool.
	builders := []struct {
		name  string
		build func(c *matrix.Dense) *task.Node
	}{
		{"OpenBLAS-style blocked", func(c *matrix.Dense) *task.Node {
			return blas.Build(m, c, a, b, blas.Options{Workers: threads, WithMath: true})
		}},
		{"parallel Strassen", func(c *matrix.Dense) *task.Node {
			return strassen.Build(m, c, a, b, threads, strassen.Options{WithMath: true})
		}},
		{"CAPS", func(c *matrix.Dense) *task.Node {
			return caps.Build(m, c, a, b, threads, caps.Options{WithMath: true})
		}},
	}
	pool := sched.New(threads)
	fmt.Printf("real execution of a %dx%d multiply on %d workers:\n", n, n, threads)
	for _, bld := range builders {
		c := matrix.New(n, n)
		metrics := pool.Run(bld.build(c))
		status := "OK"
		if !matrix.AlmostEqual(c, want, 1e-10) {
			status = fmt.Sprintf("WRONG (max diff %g)", matrix.MaxAbsDiff(c, want))
		}
		fmt.Printf("  %-24s %8v wall, %5d leaves, result %s\n",
			bld.name, metrics.Wall.Round(1000), metrics.Leaves, status)
	}

	// 2. Simulated execution on the paper's platform: deterministic
	// time, power and energy-performance figures.
	fmt.Printf("\nsimulated on %q:\n", m.Name)
	fmt.Printf("  %-10s %12s %10s %12s\n", "algorithm", "time (s)", "power (W)", "EP (Eq. 1)")
	for _, alg := range workload.PaperAlgorithms() {
		root := workload.BuildTree(m, alg, 1024, threads)
		res := sim.Run(m, root, sim.Config{Workers: threads})
		ep := res.AvgPowerTotal() / res.Makespan
		fmt.Printf("  %-10s %12.4f %10.2f %12.1f\n", alg, res.Makespan, res.AvgPowerTotal(), ep)
	}
	fmt.Println("\nOpenBLAS is fastest; the Strassen-derived algorithms draw far less")
	fmt.Println("power per added thread — the tradeoff the EP model quantifies.")
}
