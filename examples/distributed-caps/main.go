// Distributed CAPS: the paper's Section VIII future work — the same
// energy-performance scaling methodology applied to a simulated
// cluster of the paper's Haswell nodes, with the interconnect's
// transfer power in the account. Compares distributed CAPS against a
// classic SUMMA baseline on two fabrics.
package main

import (
	"fmt"

	"capscale/internal/cluster"
	"capscale/internal/dmm"
)

func main() {
	const n = 8192
	fmt.Printf("distributed %dx%d multiply on clusters of the paper's TS140 node\n\n", n, n)

	for _, fabric := range []cluster.Interconnect{cluster.GigE(), cluster.InfiniBandFDR()} {
		c, err := cluster.New(cluster.TS140Cluster(1).Node, 49, fabric)
		if err != nil {
			panic(err)
		}
		fmt.Printf("fabric: %s (%.0f MB/s, %.1f µs latency)\n",
			fabric.Name, fabric.Bandwidth/1e6, fabric.LatencySec*1e6)
		fmt.Printf("  %-6s %6s %12s %10s %12s %10s %8s\n",
			"alg", "ranks", "time (s)", "watts", "energy (J)", "comm (MB)", "S")
		for _, alg := range []string{"SUMMA", "Strassen", "CAPS"} {
			ranks := []int{1, 4, 16}
			if alg == "CAPS" || alg == "Strassen" {
				ranks = []int{1, 7, 49}
			}
			for _, pt := range dmm.Study(c, alg, n, 64, ranks) {
				fmt.Printf("  %-6s %6d %12.3f %10.1f %12.0f %10.1f %8.2f\n",
					alg, pt.Ranks, pt.Seconds, pt.Watts, pt.Joules, pt.CommMB, pt.ScalingS)
			}
		}
		fmt.Println()
	}
	fmt.Println("CAPS's per-rank communication falls like P^(-0.71) versus SUMMA's")
	fmt.Println("P^(-0.5): on the slow fabric that difference decides whether adding")
	fmt.Println("nodes saves or wastes energy — the multifaceted power model the")
	fmt.Println("paper's future work calls for.")
}
