// Crossover study: Eq. 9 predicts where Strassen techniques break even
// with a tuned blocked multiply from a platform's compute/bandwidth
// balance. This example evaluates the prediction for the paper's
// platform and a family of hypothetical machines, then checks the
// trend against the simulator: the Strassen-vs-OpenBLAS time ratio
// must fall toward 1 as the problem grows.
package main

import (
	"fmt"

	"capscale/internal/energy"
	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
	"capscale/internal/workload"
)

func main() {
	m := hw.HaswellE31225()
	y := m.PeakFlops() * m.Eff(task.KindGEMM) / 1e6 // MFlop/s
	z := m.DRAMBandwidth / 1e6                      // MB/s

	fmt.Printf("Eq. 9 crossover n = 480*y/z\n\n")
	fmt.Printf("%-34s %12s %12s %10s\n", "platform", "y (MFlop/s)", "z (MB/s)", "n")
	fmt.Printf("%-34s %12.0f %12.0f %10.0f\n", "paper's Haswell (as configured)", y, z, energy.Crossover(y, z))
	fmt.Printf("%-34s %12.0f %12.0f %10.0f\n", "2x compute (newer cores)", 2*y, z, energy.Crossover(2*y, z))
	fmt.Printf("%-34s %12.0f %12.0f %10.0f\n", "2x bandwidth (dual channel)", y, 2*z, energy.Crossover(y, 2*z))
	fmt.Printf("%-34s %12.0f %12.0f %10.0f\n", "balanced upgrade (2x both)", 2*y, 2*z, energy.Crossover(2*y, 2*z))

	// The paper could not reach its platform's crossover with 4 GB of
	// RAM; verify the simulator agrees by watching the ratio shrink.
	fmt.Printf("\nsimulated Strassen/OpenBLAS time ratio at 4 threads (falling toward 1):\n")
	fmt.Printf("%8s %12s %12s %8s\n", "n", "OpenBLAS (s)", "Strassen (s)", "ratio")
	prev := 0.0
	for _, n := range []int{512, 1024, 2048, 4096, 8192} {
		tb := simTime(m, workload.AlgOpenBLAS, n)
		ts := simTime(m, workload.AlgStrassen, n)
		ratio := ts / tb
		trend := ""
		if prev != 0 && ratio < prev {
			trend = "  (closing)"
		}
		fmt.Printf("%8d %12.4f %12.4f %8.3f%s\n", n, tb, ts, ratio, trend)
		prev = ratio
	}
	fmt.Printf("\nEq. 9 for this platform predicts break-even near n = %.0f;\n", energy.Crossover(y, z))
	fmt.Println("the simulated ratio is still above 1 at 4096, matching the paper's")
	fmt.Println("observation that its 4 GB node could not reach the crossover.")
}

func simTime(m *hw.Machine, alg workload.Algorithm, n int) float64 {
	root := workload.BuildTree(m, alg, n, 4)
	return sim.Run(m, root, sim.Config{Workers: 4}).Makespan
}
