// Power planes: measure a live (really computed) run through the
// PAPI-style event-set API over the emulated RAPL device — the same
// measurement pipeline the paper's test driver used, applied to the
// real execution engine.
//
// The arithmetic is real; the energy is modeled: the run's measured
// busy fractions and traffic totals drive the machine's power model,
// which feeds the RAPL counters that PAPI then reads back (including
// unit decode and wrap correction).
package main

import (
	"fmt"
	"math/rand"

	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/papi"
	"capscale/internal/rapl"
	"capscale/internal/sched"
	"capscale/internal/strassen"
)

func main() {
	const n = 384
	const threads = 4
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(2))
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	c := matrix.New(n, n)

	dev := rapl.NewDevice()
	fmt.Println("available RAPL events via the PAPI component:")
	for _, e := range papi.AvailableEvents() {
		fmt.Printf("  %s\n", e)
	}

	root := strassen.Build(m, c, a, b, threads, strassen.Options{WithMath: true})
	pool := sched.New(threads)

	var metrics sched.Metrics
	pkg, pp0, dram, secs, err := papi.Measure(dev, func() {
		metrics = pool.Run(root)
		// Convert the live run's observations into plane power and
		// deposit it into the RAPL device over the measured wall time.
		wall := metrics.Wall.Seconds()
		acts := make([]hw.Activity, len(metrics.PerWorkerBusy))
		for i, busy := range metrics.PerWorkerBusy {
			acts[i] = hw.Activity{
				Utilization: busy.Seconds() / wall,
				DRAMRate:    metrics.DRAMBytes / wall / float64(len(acts)),
				L3Rate:      metrics.L3Bytes / wall / float64(len(acts)),
			}
		}
		dev.Advance(wall, m.SegmentPower(acts))
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nStrassen %dx%d on %d workers: %.3fs wall, %d leaves, %.0f%% busy\n",
		n, n, threads, metrics.Wall.Seconds(), metrics.Leaves, 100*metrics.Utilization())
	fmt.Printf("measured through PAPI over %.3fs of device time:\n", secs)
	fmt.Printf("  %-32s %8.3f J  (%6.2f W)\n", papi.EventPackageEnergy, pkg, pkg/secs)
	fmt.Printf("  %-32s %8.3f J  (%6.2f W)\n", papi.EventPP0Energy, pp0, pp0/secs)
	fmt.Printf("  %-32s %8.3f J  (%6.2f W)\n", papi.EventDRAMEnergy, dram, dram/secs)
	fmt.Printf("  total system draw: %.2f W\n", (pkg+dram)/secs)
}
