// Sparse storage formats: the paper's other future-work thread —
// energy-performance scaling of SpMV across storage techniques. Runs
// the same matrix in CSR, COO and ELLPACK on the simulated platform
// and reports time, power and the Eq. 1 ratio, for a regular banded
// matrix (kind to ELL) and a skewed power-law one (brutal to ELL).
package main

import (
	"fmt"
	"math/rand"

	"capscale/internal/hw"
	"capscale/internal/sparse"
)

func main() {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(7))
	const n = 8192
	const iters = 50

	cases := []struct {
		name string
		mat  *sparse.COO
	}{
		{"banded (half-bandwidth 8, regular rows)", sparse.Banded(rng, n, 8)},
		{"power-law (avg 16 nnz/row, heavy tail)", sparse.PowerLaw(rng, n, 16, 1.8)},
	}

	for _, cse := range cases {
		csr := cse.mat.ToCSR()
		ell := csr.ToELL()
		fmt.Printf("%s — %d nnz, ELL width %d, padding waste %.0f%%\n",
			cse.name, cse.mat.NNZ(), ell.Width, 100*ell.PaddingWaste())
		fmt.Printf("  %-6s %8s %12s %10s %12s\n", "format", "threads", "time (s)", "watts", "EP (Eq.1)")
		for _, pt := range sparse.EnergyStudy(m, cse.mat, []int{1, 4}, iters) {
			fmt.Printf("  %-6v %8d %12.4f %10.2f %12.1f\n",
				pt.Format, pt.Threads, pt.Seconds, pt.Watts, pt.EP)
		}
		fmt.Println()
	}
	fmt.Println("On regular rows the three formats are close; on skewed rows ELL's")
	fmt.Println("padding turns into wasted bandwidth and wasted joules — storage")
	fmt.Println("choice is an energy decision, which is the point of the study.")
}
