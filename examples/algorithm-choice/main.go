// Algorithm choice under a power cap: the use case the paper's
// introduction motivates. A facility limits how many watts a node may
// draw; given a problem size, pick the algorithm and thread count that
// finishes soonest without breaching the cap, using the simulated
// platform and the Section III model.
package main

import (
	"fmt"

	"capscale/internal/energy"
	"capscale/internal/sim"
	"capscale/internal/workload"
)

type choice struct {
	alg     workload.Algorithm
	threads int
	seconds float64
	watts   float64
	class   energy.Class
}

func main() {
	const n = 2048
	caps := []float64{55, 40, 32, 25} // watts

	cfg := workload.PaperConfig()
	m := cfg.Machine
	fmt.Printf("choosing an algorithm for a %dx%d multiply on %q\n\n", n, n, m.Name)

	// Evaluate every candidate once.
	var candidates []choice
	for _, alg := range workload.PaperAlgorithms() {
		var ep1 float64
		for _, p := range cfg.Threads {
			root := workload.BuildTree(m, alg, n, p)
			res := sim.Run(m, root, sim.Config{Workers: p})
			ep := energy.EP(res.AvgPowerTotal(), res.Makespan)
			if p == 1 {
				ep1 = ep
			}
			s := energy.Scaling(ep, ep1)
			candidates = append(candidates, choice{
				alg: alg, threads: p,
				seconds: res.Makespan,
				watts:   res.AvgPowerTotal(),
				class:   energy.Classify(s, p),
			})
		}
	}

	fmt.Printf("%-10s %8s %10s %10s %12s\n", "algorithm", "threads", "time (s)", "watts", "EP scaling")
	for _, c := range candidates {
		fmt.Printf("%-10s %8d %10.4f %10.2f %12s\n", c.alg, c.threads, c.seconds, c.watts, c.class)
	}

	for _, cap := range caps {
		best := pick(candidates, cap)
		if best == nil {
			fmt.Printf("\npower cap %5.1f W: no configuration fits\n", cap)
			continue
		}
		fmt.Printf("\npower cap %5.1f W: run %v with %d threads (%.4f s at %.2f W)\n",
			cap, best.alg, best.threads, best.seconds, best.watts)
	}
}

// pick returns the fastest candidate whose average draw fits the cap.
func pick(cands []choice, cap float64) *choice {
	var best *choice
	for i := range cands {
		c := &cands[i]
		if c.watts > cap {
			continue
		}
		if best == nil || c.seconds < best.seconds {
			best = c
		}
	}
	return best
}
