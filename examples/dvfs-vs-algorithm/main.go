// DVFS versus algorithmic power scaling: the paper positions
// power-aware algorithm choice as a third lever beside hardware
// frequency scaling and power-aware scheduling. This example makes the
// comparison concrete: under a sequence of tightening package power
// caps, fit the budget either by (a) RAPL-style frequency derating
// (internal/hw.DeratedForCap) while keeping the fastest algorithm, or
// (b) keeping nominal frequency and changing the algorithm or thread
// count. Below the DVFS floor, only the algorithmic lever is left.
package main

import (
	"fmt"

	"capscale/internal/sim"
	"capscale/internal/workload"
)

type option struct {
	desc    string
	seconds float64
	watts   float64
}

func main() {
	const n = 2048
	base := workload.PaperConfig().Machine
	fmt.Printf("fitting a %dx%d multiply under package power caps on %q\n", n, n, base.Name)
	fmt.Printf("(nominal worst-case draw: %.1f W)\n\n", base.MaxPower())

	for _, cap := range []float64{45, 35, 28, 22, 20} {
		fmt.Printf("cap %.0f W:\n", cap)

		// Path A: DVFS — derate frequency, keep OpenBLAS on all cores.
		if capped, err := base.DeratedForCap(cap); err == nil {
			root := workload.BuildTree(capped, workload.AlgOpenBLAS, n, capped.Cores)
			res := sim.Run(capped, root, sim.Config{Workers: capped.Cores})
			fmt.Printf("  DVFS:        OpenBLAS @ %.2f GHz, %d threads  →  %.3f s at %.1f W (%.1f J)\n",
				capped.FreqHz/1e9, capped.Cores, res.Makespan, res.AvgPowerTotal(),
				res.EnergyTotal())
		} else {
			fmt.Printf("  DVFS:        infeasible (%v)\n", err)
		}

		// Path B: algorithmic — nominal frequency, best algorithm and
		// thread count whose measured draw fits the cap.
		var best *option
		for _, alg := range workload.PaperAlgorithms() {
			for p := 1; p <= base.Cores; p++ {
				root := workload.BuildTree(base, alg, n, p)
				res := sim.Run(base, root, sim.Config{Workers: p})
				if res.AvgPowerTotal() > cap {
					continue
				}
				o := option{
					desc:    fmt.Sprintf("%v, %d threads", alg, p),
					seconds: res.Makespan,
					watts:   res.AvgPowerTotal(),
				}
				if best == nil || o.seconds < best.seconds {
					b := o
					best = &b
				}
			}
		}
		if best == nil {
			fmt.Printf("  algorithmic: infeasible\n")
		} else {
			fmt.Printf("  algorithmic: %-24s →  %.3f s at %.1f W (%.1f J)\n",
				best.desc, best.seconds, best.watts, best.seconds*best.watts)
		}
		fmt.Println()
	}
	fmt.Println("For compute-bound DGEMM, DVFS fits moderate caps efficiently — but")
	fmt.Println("below its frequency floor only the algorithmic lever remains, which")
	fmt.Println("is exactly the tertiary research path the paper argues for.")
}
