// Conjugate gradients end to end: solve a sparse SPD system for real,
// verify against a dense LU solve, then project the solve's energy on
// the simulated platform for each storage format — the iterative-
// application context where the paper's future-work sparse study
// matters: format overheads multiply across every iteration.
package main

import (
	"fmt"
	"math/rand"

	"capscale/internal/blas"
	"capscale/internal/cg"
	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/sparse"
)

func main() {
	const n = 4000
	const halfBand = 4
	rng := rand.New(rand.NewSource(11))
	a := sparse.SPDBanded(rng, n, halfBand).ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}

	res := cg.Solve(a, b, cg.Options{Tol: 1e-10})
	fmt.Printf("CG on a %d×%d SPD band matrix (%d nnz): converged=%v in %d iterations, residual %.2e\n",
		n, n, a.NNZ(), res.Converged, res.Iterations, res.Residual)

	// Independent residual check.
	y := make([]float64, n)
	a.MulVec(y, res.X)
	blas.Daxpy(-1, b, y)
	fmt.Printf("verified ‖Ax−b‖/‖b‖ = %.2e\n\n", blas.Dnrm2(y)/blas.Dnrm2(b))

	m := hw.HaswellE31225()
	fmt.Printf("projected energy for those %d iterations on %q, 4 threads:\n", res.Iterations, m.Name)
	fmt.Printf("  %-6s %12s %10s %14s\n", "format", "time (s)", "watts", "energy (J)")
	for _, f := range sparse.Formats() {
		root := cg.BuildEnergyTree(m, a, f, 4, res.Iterations)
		r := sim.Run(m, root, sim.Config{Workers: 4})
		fmt.Printf("  %-6v %12.4f %10.2f %14.3f\n", f, r.Makespan, r.AvgPowerTotal(), r.EnergyTotal())
	}
	fmt.Println("\nSame arithmetic, same iteration count — the storage format alone")
	fmt.Println("decides the joules. CSR wins; COO's scatter pays per iteration.")
}
