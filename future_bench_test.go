package capscale

import (
	"fmt"
	"math/rand"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/hw"
	"capscale/internal/sparse"
	"capscale/internal/workload"
)

// Benches for the paper's Section VIII future work, implemented in
// internal/dmm (distributed memory with interconnect power) and
// internal/sparse (storage-format energy scaling).

// BenchmarkFutureDistributedCAPS runs the distributed CAPS
// energy-performance scaling study across node counts, with
// interconnect transfer power included — the paper's proposed MPI
// follow-up.
func BenchmarkFutureDistributedCAPS(b *testing.B) {
	c := cluster.TS140Cluster(49)
	n := 8192
	if _, loaded := printGates.LoadOrStore("future-dmm", true); !loaded {
		fmt.Printf("\nFuture work — distributed energy scaling, n=%d on TS140 nodes + 1GbE:\n", n)
		fmt.Printf("%-6s %6s %12s %10s %12s %10s %10s\n",
			"alg", "ranks", "time (s)", "watts", "energy (J)", "comm (MB)", "S (Eq.5)")
		for _, alg := range []string{"SUMMA", "Strassen", "CAPS"} {
			ranks := []int{1, 4, 16}
			if alg == "CAPS" || alg == "Strassen" {
				ranks = []int{1, 7, 49}
			}
			for _, pt := range dmm.Study(c, alg, n, 64, ranks) {
				fmt.Printf("%-6s %6d %12.3f %10.1f %12.0f %10.1f %10.2f\n",
					alg, pt.Ranks, pt.Seconds, pt.Watts, pt.Joules, pt.CommMB, pt.ScalingS)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := dmm.RunCAPS(c, n, 64, 49)
		b.ReportMetric(res.Makespan, "sim-makespan-s")
	}
}

// BenchmarkPlatformSweep applies the model across the machine zoo —
// the paper's "arbitrary computing platforms" ambition: per platform,
// how each algorithm fares and where Eq. 9 puts the crossover.
func BenchmarkPlatformSweep(b *testing.B) {
	n := 2048
	if _, loaded := printGates.LoadOrStore("platform-sweep", true); !loaded {
		fmt.Printf("\nCross-platform sweep at n=%d (full threads per machine):\n", n)
		fmt.Printf("%-44s %-9s %10s %8s %10s %12s\n",
			"machine", "algorithm", "time (s)", "watts", "EDP (J·s)", "Eq.9 cross")
		for _, pt := range workload.CrossPlatform(hw.Zoo(), n) {
			fmt.Printf("%-44s %-9v %10.4f %8.1f %10.2f %12.0f\n",
				pt.Machine, pt.Algorithm, pt.Seconds, pt.Watts, pt.EDP, pt.CrossoverN)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = workload.CrossPlatform(hw.Zoo(), 512)
	}
}

// BenchmarkFutureSparseEnergyScaling runs the storage-format SpMV
// energy study — the paper's proposed sparse follow-up.
func BenchmarkFutureSparseEnergyScaling(b *testing.B) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(42))
	a := sparse.PowerLaw(rng, 8192, 16, 1.8)
	if _, loaded := printGates.LoadOrStore("future-sparse", true); !loaded {
		waste := a.ToCSR().ToELL().PaddingWaste()
		fmt.Printf("\nFuture work — SpMV storage-format energy scaling "+
			"(power-law 8192², %d nnz, ELL padding waste %.0f%%):\n", a.NNZ(), 100*waste)
		fmt.Printf("%-6s %8s %12s %10s %12s %12s\n",
			"format", "threads", "time (s)", "watts", "EP (Eq.1)", "traffic MB")
		for _, pt := range sparse.EnergyStudy(m, a, []int{1, 2, 3, 4}, 50) {
			fmt.Printf("%-6v %8d %12.4f %10.2f %12.1f %12.1f\n",
				pt.Format, pt.Threads, pt.Seconds, pt.Watts, pt.EP, pt.BytesMB)
		}
	}
	csr := a.ToCSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv := sparse.BuildSpMV(m, csr, sparse.FormatCSR, sparse.Options{Workers: 4, Iterations: 50})
		_ = spmv
	}
}
