#!/usr/bin/env bash
# Sweep-server smoke: the service contract at the real binary boundary.
# Boots epscaled on an ephemeral port, fires two overlapping identical
# sweeps at it, and asserts what the HTTP layer promises:
#   - both clients stream every cell record plus a complete trailer,
#   - the shared cells execute exactly once across the two requests
#     (single-flight: the dedup counters in /v1/status prove it),
#   - GET /v1/result/{fingerprint} replays the stored sweep
#     byte-identically, replay after replay,
#   - SIGTERM drains the daemon cleanly (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/epscaled" ./cmd/epscaled

addr=127.0.0.1:18420
"$tmp/epscaled" -addr "$addr" -store "$tmp/store" > "$tmp/daemon.log" 2>&1 &
pid=$!

for _ in $(seq 1 50); do
    curl -sf "http://$addr/v1/status" > /dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "serve_smoke.sh: daemon died on startup" >&2; cat "$tmp/daemon.log" >&2; exit 1; }
    sleep 0.1
done
curl -sf "http://$addr/v1/status" > /dev/null \
    || { echo "serve_smoke.sh: daemon never became ready" >&2; cat "$tmp/daemon.log" >&2; exit 1; }

req='{"algorithms":["OpenBLAS","Strassen"],"sizes":[64,128],"threads":[1]}'

# Two overlapping identical sweeps. Each must stream all 4 cell
# records and a trailer with "complete":true.
curl -sf -X POST -H 'X-Client-ID: a' -d "$req" "http://$addr/v1/sweep" > "$tmp/a.ndjson" &
curl -sf -X POST -H 'X-Client-ID: b' -d "$req" "http://$addr/v1/sweep" > "$tmp/b.ndjson" &
wait %2 %3 2>/dev/null || wait

for c in a b; do
    n=$(grep -c '"key"' "$tmp/$c.ndjson")
    [ "$n" -eq 4 ] || { echo "serve_smoke.sh: client $c streamed $n records, want 4" >&2; cat "$tmp/$c.ndjson" >&2; exit 1; }
    grep -q '"done":true' "$tmp/$c.ndjson" && grep -q '"complete":true' "$tmp/$c.ndjson" \
        || { echo "serve_smoke.sh: client $c got no complete trailer" >&2; cat "$tmp/$c.ndjson" >&2; exit 1; }
done

# Single-flight: across both requests the 4 shared cells executed
# exactly once each — whether the second client attached to the live
# sweep or resumed from the store, nothing re-executes.
status=$(curl -sf "http://$addr/v1/status")
executed=$(echo "$status" | sed -n 's/.*"cells_executed":\([0-9]*\).*/\1/p')
started=$(echo "$status" | sed -n 's/.*"sweeps_started":\([0-9]*\).*/\1/p')
[ "$executed" = "4" ] \
    || { echo "serve_smoke.sh: overlapping sweeps executed $executed cells, want 4 (single-flight broken)" >&2; echo "$status" >&2; exit 1; }
[ -n "$started" ] && [ "$started" -le 2 ] \
    || { echo "serve_smoke.sh: $started sweeps started for one fingerprint" >&2; echo "$status" >&2; exit 1; }

# Byte-identical replay from the store, twice.
fp=$(sed -n 's/.*"fingerprint":"\([0-9a-f]\{16\}\)".*/\1/p' "$tmp/a.ndjson" | head -1)
[ -n "$fp" ] || { echo "serve_smoke.sh: no fingerprint in trailer" >&2; exit 1; }
curl -sf "http://$addr/v1/result/$fp" > "$tmp/replay1.ndjson"
curl -sf "http://$addr/v1/result/$fp" > "$tmp/replay2.ndjson"
cmp -s "$tmp/replay1.ndjson" "$tmp/replay2.ndjson" \
    || { echo "serve_smoke.sh: two replays of one result differ" >&2; exit 1; }
[ "$(grep -c '"key"' "$tmp/replay1.ndjson")" -eq 4 ] \
    || { echo "serve_smoke.sh: replay is missing records" >&2; cat "$tmp/replay1.ndjson" >&2; exit 1; }
# Every replayed record line appeared verbatim in the live stream.
while IFS= read -r line; do
    grep -qF "$line" "$tmp/a.ndjson" \
        || { echo "serve_smoke.sh: replayed record not byte-identical to streamed record:" >&2; echo "$line" >&2; exit 1; }
done < "$tmp/replay1.ndjson"

# Graceful drain on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if wait "$pid"; then :; else
    echo "serve_smoke.sh: daemon exited non-zero on SIGTERM" >&2; cat "$tmp/daemon.log" >&2; exit 1
fi
grep -q "drained cleanly" "$tmp/daemon.log" \
    || { echo "serve_smoke.sh: daemon did not drain cleanly" >&2; cat "$tmp/daemon.log" >&2; exit 1; }
pid=

echo "serve_smoke.sh: sweep service green"
