#!/usr/bin/env bash
# Distributed smoke: the cluster axis at the real binary boundary.
# Sweeps a 4-node gigabit-Ethernet cluster at n=256 through epscale
# with the fault injector armed, and asserts the distributed pipeline
# holds the same contract as the single-node one:
#   - the sweep exits 0 and renders the comm table (measured wire
#     volume against the Eq. 8 / Ballard–Demmel lower bound) with a
#     row per distributed algorithm,
#   - every distributed cell reconciles measured joules against the
#     simulator ground truth inside the monitor (a divergence panics
#     the sweep, so exit 0 is the assertion),
#   - a checkpointed re-run restores completed cells instead of
#     re-simulating them, and renders identical tables.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/epscale" ./cmd/epscale

run() {
    "$tmp/epscale" -what comm -cluster 4x1GbE -sizes 256 -threads 1 \
        -faults 42 -fault-rate 0.5 "$@"
}

run -checkpoint "$tmp/sweep.ck" > "$tmp/out1.txt" 2> "$tmp/err1.txt" \
    || { echo "dist_smoke.sh: distributed sweep exited non-zero" >&2; cat "$tmp/err1.txt" >&2; exit 1; }

for alg in SUMMA 2.5D DStrassen dCAPS; do
    grep -q "$alg" "$tmp/out1.txt" \
        || { echo "dist_smoke.sh: comm table missing $alg row" >&2; cat "$tmp/out1.txt" >&2; exit 1; }
done

# Resume from the journal: completed cells restored, tables unchanged.
run -checkpoint "$tmp/sweep.ck" > "$tmp/out2.txt" 2> "$tmp/err2.txt" \
    || { echo "dist_smoke.sh: resumed sweep exited non-zero" >&2; cat "$tmp/err2.txt" >&2; exit 1; }
grep -q "restored" "$tmp/err2.txt" \
    || { echo "dist_smoke.sh: checkpoint resume restored nothing" >&2; cat "$tmp/err2.txt" >&2; exit 1; }
cmp -s "$tmp/out1.txt" "$tmp/out2.txt" \
    || { echo "dist_smoke.sh: resumed sweep differs from the original" >&2; exit 1; }

echo "dist_smoke.sh: distributed pipeline green"
