#!/usr/bin/env bash
# Chaos smoke: the fault-injection gate at the real binary boundary.
# Runs a three-algorithm powertrace session with the deterministic
# fault injector armed in half the cells, and asserts the pipeline
# degrades instead of dying:
#   - the sweep exits 0 with every degraded cell flagged on stderr,
#   - the same seed reproduces bit-identical output,
#   - a checkpointed re-run restores completed cells instead of
#     re-simulating them, and still emits the identical CSV.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/powertrace" ./cmd/powertrace

run() {
    "$tmp/powertrace" -session -interval 0.001 \
        -faults 42 -fault-rate 0.5 "$@"
}

run -checkpoint "$tmp/sweep.ck" > "$tmp/out1.csv" 2> "$tmp/err1.txt" \
    || { echo "chaos_smoke.sh: faulted sweep exited non-zero" >&2; cat "$tmp/err1.txt" >&2; exit 1; }

grep -q "degraded" "$tmp/err1.txt" \
    || { echo "chaos_smoke.sh: no degradation flagged — the fault schedule did nothing" >&2; cat "$tmp/err1.txt" >&2; exit 1; }

# Same seed, fresh state: bit-identical partial results.
run > "$tmp/out2.csv" 2> /dev/null
cmp -s "$tmp/out1.csv" "$tmp/out2.csv" \
    || { echo "chaos_smoke.sh: same-seed sweeps differ" >&2; exit 1; }

# Resume from the journal: completed cells restored, output unchanged.
run -checkpoint "$tmp/sweep.ck" > "$tmp/out3.csv" 2> "$tmp/err3.txt"
grep -q "restored" "$tmp/err3.txt" \
    || { echo "chaos_smoke.sh: checkpoint resume restored nothing" >&2; cat "$tmp/err3.txt" >&2; exit 1; }
cmp -s "$tmp/out1.csv" "$tmp/out3.csv" \
    || { echo "chaos_smoke.sh: resumed sweep differs from the original" >&2; exit 1; }

echo "chaos_smoke.sh: graceful degradation green"
