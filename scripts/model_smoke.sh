#!/usr/bin/env bash
# Model-guided sweep smoke at the real binary boundary. Runs a
# 72-cell dense matrix (3 algorithms x 6 sizes x 4 threads) through
# epscale with -plan guided and asserts the planner's contract:
#   - the sweep exits 0 and reports "guided plan measured X/Y cells"
#     on stderr with X at or under a third of Y (the hard budget),
#   - the fit it ships is tight: every family's in-sample energy
#     max-rel-error stays under 10% in the model table,
#   - a second identical guided run renders byte-identical output
#     (the planner is deterministic, not a sampling heuristic).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/epscale" ./cmd/epscale

run() {
    "$tmp/epscale" -plan guided -seed-frac 0.17 -what model \
        -sizes 128,192,256,320,384,448 -threads 1,2,3,4 "$@"
}

run > "$tmp/out1.txt" 2> "$tmp/err1.txt" \
    || { echo "model_smoke.sh: guided sweep exited non-zero" >&2; cat "$tmp/err1.txt" >&2; exit 1; }

line=$(grep "guided plan measured" "$tmp/err1.txt") \
    || { echo "model_smoke.sh: no planner note on stderr" >&2; cat "$tmp/err1.txt" >&2; exit 1; }
measured=$(echo "$line" | sed -E 's|.*measured ([0-9]+)/([0-9]+) cells.*|\1|')
total=$(echo "$line" | sed -E 's|.*measured ([0-9]+)/([0-9]+) cells.*|\2|')
if [ "$((3 * measured))" -gt "$total" ]; then
    echo "model_smoke.sh: guided plan measured $measured of $total cells — above the 1/3 budget" >&2
    exit 1
fi

# Family rows look like:  classic  20  yes  0.99997  +0.47%  +0.33%  +0.13%
# Column 6 is the in-sample energy max-rel-error.
awk '
/^(classic|strassen|caps|sparse|distributed) / {
    err = $6; sub(/[+%]/, "", err); sub(/%/, "", err)
    if (err + 0 > 10) { printf "model_smoke.sh: %s energy max rel %s%% above 10%%\n", $1, err; bad = 1 }
    rows++
}
END {
    if (rows == 0) { print "model_smoke.sh: no family rows in the model table"; bad = 1 }
    exit bad
}' "$tmp/out1.txt" || { cat "$tmp/out1.txt" >&2; exit 1; }

run > "$tmp/out2.txt" 2> "$tmp/err2.txt" \
    || { echo "model_smoke.sh: second guided sweep exited non-zero" >&2; cat "$tmp/err2.txt" >&2; exit 1; }
cmp -s "$tmp/out1.txt" "$tmp/out2.txt" \
    || { echo "model_smoke.sh: two identical guided sweeps rendered different reports" >&2; exit 1; }

echo "model_smoke.sh: guided planner green ($measured/$total cells measured)"
