#!/usr/bin/env bash
# Benchmarks the model-guided planner against the exhaustive sweep on
# the same 72-cell dense matrix and records executed-cell counts and
# wall time to BENCH_model.json, so the measurement-avoidance
# trajectory is comparable across PRs. Fails if the guided plan does
# not cut executed cells by at least 3x.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_model.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/epscale" ./cmd/epscale

args=(-what headlines -sizes 128,192,256,320,384,448 -threads 1,2,3,4)

t0=$(date +%s%N)
"$tmp/epscale" "${args[@]}" > /dev/null 2> "$tmp/exh.txt"
t1=$(date +%s%N)
exh_ns=$((t1 - t0))
total=$(sed -En 's|.*running ([0-9]+) configurations.*|\1|p' "$tmp/exh.txt" | head -1)

t0=$(date +%s%N)
"$tmp/epscale" -plan guided -seed-frac 0.17 "${args[@]}" > /dev/null 2> "$tmp/gui.txt"
t1=$(date +%s%N)
gui_ns=$((t1 - t0))
measured=$(sed -En 's|.*measured ([0-9]+)/[0-9]+ cells.*|\1|p' "$tmp/gui.txt" | head -1)

if [ -z "$total" ] || [ -z "$measured" ]; then
    echo "bench_model.sh: could not parse cell counts" >&2
    cat "$tmp/exh.txt" "$tmp/gui.txt" >&2
    exit 1
fi
if [ "$((3 * measured))" -gt "$total" ]; then
    echo "bench_model.sh: guided executed $measured of $total cells — under 3x reduction" >&2
    exit 1
fi

awk -v total="$total" -v measured="$measured" -v exh="$exh_ns" -v gui="$gui_ns" '
BEGIN {
    printf "{\n"
    printf "  \"matrix_cells\": %d,\n", total
    printf "  \"exhaustive\": {\"executed_cells\": %d, \"seconds\": %.3f},\n", total, exh / 1e9
    printf "  \"guided\": {\"executed_cells\": %d, \"seconds\": %.3f},\n", measured, gui / 1e9
    printf "  \"cell_reduction\": %.2f\n", total / measured
    printf "}\n"
}' > "$out"

cat "$out"
echo "bench_model.sh: wrote $out"
