// Command errcheck is the repo's focused errcheck pass: it flags
// discarded error returns from the durability-critical calls — Close,
// Sync, Rename, Remove, Truncate and Flush — in the packages that own
// on-disk state. A dropped Close/Sync error is how a torn journal
// masquerades as a clean shutdown, so these must be handled or
// explicitly waved through with `_ =`.
//
// The scan is syntactic (no type information): any bare expression
// statement calling a method or function with one of the watched
// names counts. Two escapes read as intent at the call site and are
// not flagged:
//
//   - `_ = f.Close()` — the explicit "best-effort on the failure path"
//   - `defer f.Close()` — cleanup defers, where the caller has no
//     error channel left to report into
//
// Test files are skipped entirely: they exercise failure paths where
// the error is the point, not a leak.
//
// Usage: go run ./scripts/errcheck [dir ...]
// With no args it scans the repo's durability-owning packages.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// watched are the method/function names whose error returns guard
// on-disk durability. Write is deliberately absent: the journal and
// lease layers already funnel writes through checked helpers, and a
// name-only scan would drown in bytes.Buffer / strings.Builder noise.
var watched = map[string]bool{
	"Close":    true,
	"Sync":     true,
	"Rename":   true,
	"Remove":   true,
	"Truncate": true,
	"Flush":    true,
}

// defaultDirs are the packages that own files on disk. Everything
// else goes through these layers.
var defaultDirs = []string{
	"internal/store",
	"internal/faults",
	"internal/serve",
	"internal/workload",
	"internal/trace",
	"cmd/epscaled",
	"cmd/epscale",
	"cmd/powertrace",
}

type finding struct {
	pos  token.Position
	call string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var findings []finding
	for _, dir := range dirs {
		fs, err := scanDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errcheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: result of %s ignored (handle it or discard with `_ =`)\n",
			f.pos.Filename, f.pos.Line, f.call)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "errcheck: %d dropped error return(s)\n", len(findings))
		os.Exit(1)
	}
}

func scanDir(dir string) ([]finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var findings []finding
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := calleeName(call); name != "" && watched[name] {
				findings = append(findings, finding{
					pos:  fset.Position(call.Pos()),
					call: render(call),
				})
			}
			return true
		})
	}
	return findings, nil
}

// calleeName extracts the bare method/function name of a call:
// f.Close → Close, os.Rename → Rename, Close → Close.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// render prints the callee compactly for the diagnostic (receiver
// chains collapse to their last identifier: s.store.f.Close →
// f.Close).
func render(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name
		}
		return "call"
	}
	recv := "(...)"
	switch x := sel.X.(type) {
	case *ast.Ident:
		recv = x.Name
	case *ast.SelectorExpr:
		recv = x.Sel.Name
	}
	return recv + "." + sel.Sel.Name
}
