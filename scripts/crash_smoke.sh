#!/usr/bin/env bash
# Crash-recovery smoke: the replica-takeover contract at the real
# binary boundary. Two epscaled replicas share one store directory.
# A client streams a sweep from replica A; mid-sweep A is killed with
# SIGKILL — no drain, no checkpoint flush beyond what the journal
# already fsynced. The client then follows its documented retry
# contract: re-POST the same sweep to the surviving replica with
# ?from=<records already held>. The smoke asserts the crash oracle:
#   - the survivor steals the dead replica's lease and finishes the
#     sweep, streaming exactly the missing records plus a complete
#     trailer (no gap, no overlap: the two stream halves union to
#     every cell exactly once),
#   - the survivor re-executes only the cells the journal had not yet
#     captured (cells_executed < total: journaled work is never redone),
#   - GET /v1/result/{fingerprint} replays byte-identically, and every
#     record the client streamed — before and after the crash —
#     appears verbatim in the replay,
#   - the survivor drains cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; for p in "${pidA:-}" "${pidB:-}"; do [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true; done' EXIT

go build -o "$tmp/epscaled" ./cmd/epscaled

store="$tmp/store"
addrA=127.0.0.1:18431
addrB=127.0.0.1:18432
"$tmp/epscaled" -addr "$addrA" -store "$store" -id replica-a -parallel 1 > "$tmp/a.log" 2>&1 &
pidA=$!
disown "$pidA" # deliberately SIGKILLed below; keep bash from reporting it
"$tmp/epscaled" -addr "$addrB" -store "$store" -id replica-b -parallel 1 > "$tmp/b.log" 2>&1 &
pidB=$!

wait_ready() {
    local addr=$1 name=$2 pid=$3
    for _ in $(seq 1 50); do
        curl -sf "http://$addr/v1/status" > /dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || { echo "crash_smoke.sh: replica $name died on startup" >&2; cat "$tmp/$name.log" >&2; exit 1; }
        sleep 0.1
    done
    echo "crash_smoke.sh: replica $name never became ready" >&2; cat "$tmp/$name.log" >&2; exit 1
}
wait_ready "$addrA" a "$pidA"
wait_ready "$addrB" b "$pidB"

# A sweep slow enough (~4 s single-threaded) to be killed mid-flight:
# 18 cells of large sizes with a dense measurement poll.
req='{"algorithms":["OpenBLAS","Strassen"],"sizes":[2048,3072,4096],"threads":[1,2,4],"poll_interval":0.002}'
cells=18

curl -s -N -X POST -H 'X-Client-ID: smoke' -d "$req" "http://$addrA/v1/sweep" > "$tmp/part1.ndjson" &
curlpid=$!

# Kill replica A once its journal holds at least two durable cell
# records (header + 2 lines) but the sweep is still running.
journal=
for _ in $(seq 1 300); do
    journal=$(ls "$store"/*.jsonl 2>/dev/null | head -1 || true)
    if [ -n "$journal" ] && [ "$(wc -l < "$journal")" -ge 3 ]; then break; fi
    journal=
    sleep 0.02
done
[ -n "$journal" ] || { echo "crash_smoke.sh: no journal appeared in the shared store" >&2; cat "$tmp/a.log" >&2; exit 1; }
kill -9 "$pidA"
pidA=
wait "$curlpid" 2>/dev/null || true # the stream dies with the replica

# SIGKILL can land mid-line on the client side; drop a torn final line
# so the record count below is exact.
if [ -s "$tmp/part1.ndjson" ] && [ -n "$(tail -c 1 "$tmp/part1.ndjson")" ]; then
    sed -i '$ d' "$tmp/part1.ndjson"
fi
got=$(grep -c '"key"' "$tmp/part1.ndjson" || true)
[ "$got" -ge 1 ] || { echo "crash_smoke.sh: client held no records before the crash" >&2; exit 1; }
[ "$got" -lt "$cells" ] || { echo "crash_smoke.sh: sweep finished before the kill; nothing to take over" >&2; exit 1; }

# The documented client retry: re-POST to the survivor with the resume
# token. Replica B must steal the dead replica's lease, resume from
# the journal, and stream exactly the records after the token.
curl -sf -N -X POST -H 'X-Client-ID: smoke' -d "$req" "http://$addrB/v1/sweep?from=$got" > "$tmp/part2.ndjson" \
    || { echo "crash_smoke.sh: resume POST to the survivor failed" >&2; cat "$tmp/b.log" >&2; exit 1; }
grep -q '"done":true' "$tmp/part2.ndjson" && grep -q '"complete":true' "$tmp/part2.ndjson" \
    || { echo "crash_smoke.sh: survivor stream has no complete trailer" >&2; tail -3 "$tmp/part2.ndjson" >&2; exit 1; }
rest=$(grep -c '"key"' "$tmp/part2.ndjson")
[ $((got + rest)) -eq "$cells" ] \
    || { echo "crash_smoke.sh: stream halves cover $got + $rest records, want $cells (gap or overlap)" >&2; exit 1; }

# No cell appears twice across the two halves, and together they cover
# every cell exactly once.
sed -n 's/.*"key":"\([^"]*\)".*/\1/p' "$tmp/part1.ndjson" "$tmp/part2.ndjson" | sort > "$tmp/keys"
dups=$(uniq -d < "$tmp/keys")
[ -z "$dups" ] || { echo "crash_smoke.sh: duplicate cells across the crash boundary:" >&2; echo "$dups" >&2; exit 1; }
[ "$(wc -l < "$tmp/keys")" -eq "$cells" ] \
    || { echo "crash_smoke.sh: union covers $(wc -l < "$tmp/keys") cells, want $cells" >&2; exit 1; }

# Exactly-once execution: the survivor restored the dead replica's
# journaled cells instead of re-running them.
status=$(curl -sf "http://$addrB/v1/status")
executed=$(echo "$status" | sed -n 's/.*"cells_executed":\([0-9]*\).*/\1/p')
[ -n "$executed" ] && [ "$executed" -ge 1 ] && [ "$executed" -lt "$cells" ] \
    || { echo "crash_smoke.sh: survivor executed $executed cells of $cells (journaled cells must not re-run)" >&2; echo "$status" >&2; exit 1; }

# Byte-identical replay of the completed sweep, and both stream halves
# appear verbatim inside it.
fp=$(sed -n 's/.*"fingerprint":"\([0-9a-f]\{16\}\)".*/\1/p' "$tmp/part2.ndjson" | head -1)
[ -n "$fp" ] || { echo "crash_smoke.sh: no fingerprint in survivor trailer" >&2; exit 1; }
curl -sf "http://$addrB/v1/result/$fp" > "$tmp/replay1.ndjson"
curl -sf "http://$addrB/v1/result/$fp" > "$tmp/replay2.ndjson"
cmp -s "$tmp/replay1.ndjson" "$tmp/replay2.ndjson" \
    || { echo "crash_smoke.sh: two replays of one result differ" >&2; exit 1; }
[ "$(grep -c '"key"' "$tmp/replay1.ndjson")" -eq "$cells" ] \
    || { echo "crash_smoke.sh: replay is missing records" >&2; exit 1; }
grep '"key"' "$tmp/part1.ndjson" "$tmp/part2.ndjson" | sed 's/^[^:]*://' | while IFS= read -r line; do
    grep -qF "$line" "$tmp/replay1.ndjson" \
        || { echo "crash_smoke.sh: streamed record not byte-identical in the replay:" >&2; echo "$line" >&2; exit 1; }
done

# The survivor still drains cleanly.
kill -TERM "$pidB"
for _ in $(seq 1 100); do
    kill -0 "$pidB" 2>/dev/null || break
    sleep 0.1
done
if wait "$pidB"; then :; else
    echo "crash_smoke.sh: survivor exited non-zero on SIGTERM" >&2; cat "$tmp/b.log" >&2; exit 1
fi
grep -q "drained cleanly" "$tmp/b.log" \
    || { echo "crash_smoke.sh: survivor did not drain cleanly" >&2; cat "$tmp/b.log" >&2; exit 1; }
pidB=

echo "crash_smoke.sh: crash recovery green"
