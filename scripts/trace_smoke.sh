#!/usr/bin/env bash
# Trace-export smoke: run the powertrace CLI with -trace-out on a small
# problem and validate the emitted Chrome trace-event JSON against the
# structural golden check (well-formed events, monotone per-track
# timestamps, RAPL counter tracks present). This exercises the real
# binary boundary — flag parsing, file writing, exporter — not just the
# in-process export path the unit tests cover.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/powertrace -alg caps -n 128 -threads 2 -interval 0.001 \
    -trace-out "$tmp/trace.json" > "$tmp/trace.csv"

CAPSCALE_TRACE_FILE="$tmp/trace.json" \
    go test -run 'TestTraceSmokeGoldenFile' -count=1 ./internal/workload/

echo "trace_smoke.sh: trace export green"
