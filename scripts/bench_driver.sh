#!/usr/bin/env bash
# Runs the experiment-driver benchmarks (BenchmarkExecuteMatrix's
# sequential/parallel/memoized variants, BenchmarkBuildTree's
# dense/shape variants, plus BenchmarkExecuteDistributed's cluster
# sweep) and records ns/op, B/op and allocs/op in BENCH_driver.json so
# the perf trajectory is comparable across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_driver.json
# -run '^$' matches no tests ('XXX' was a substring match that still
# ran any test whose name contains it).
raw=$(go test . -run '^$' -bench 'BenchmarkExecuteMatrix|BenchmarkBuildTree|BenchmarkExecuteDistributed' -benchmem "$@")
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark(ExecuteMatrix|BuildTree|ExecuteDistributed)\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        name, $2, $3, $5, $7
}
END { print "\n}" }
' > "$out"
echo "bench_driver.sh: wrote $out"
