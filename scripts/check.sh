#!/usr/bin/env bash
# Repo verify gate: formatting, vet, build, full tests, and a race pass
# over the concurrent packages (the real executor and the parallel
# GEMM kernel).
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/kernel/...
echo "check.sh: all green"
