#!/usr/bin/env bash
# Repo verify gate: formatting, vet, build, full tests, a race pass
# over the concurrent packages (the real executor and the parallel GEMM
# kernel) and the measurement stack (device poll hooks, PAPI meters,
# the polling monitor, fault injector and trace resampling), a named
# monitor reconciliation smoke (measured energy must match device
# ground truth, and deliberately undersampled runs must be flagged for
# wrap loss), and binary-boundary smokes: Perfetto trace export, the
# seeded chaos sweep with checkpoint resume, the distributed comm
# sweep, the model-guided planner, and the sweep service daemon —
# plus a focused errcheck pass over the durability-owning packages
# and a crash smoke that SIGKILLs a leaseholder replica mid-sweep and
# makes a survivor finish the sweep from the shared store.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
# A second, focused copylocks pass: the fault/monitor layer passes
# hook closures and small structs across goroutines, where an
# accidentally copied mutex is easy to introduce and hard to spot.
# (The shadow analyzer would ride here too, but it ships as a separate
# binary this container does not have.)
go vet -copylocks ./...
# Focused errcheck pass: a dropped Close/Sync/Rename error in the
# packages that own on-disk state is how a torn journal masquerades as
# a clean shutdown (scripts/errcheck/main.go).
go run ./scripts/errcheck
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/kernel/... ./internal/obs/...
go test -race ./internal/rapl/... ./internal/papi/... ./internal/trace/... ./internal/monitor/... ./internal/faults/...
# The distributed stack: the simulated MPI layer, the rank programs
# and the comms/cluster model feed the same concurrent driver, so they
# get the same race pass.
go test -race ./internal/mpi/... ./internal/dmm/... ./internal/cluster/...
# The sweep server: concurrent HTTP subscribers, sweep-level
# single-flight and the drain path all live on shared state — and the
# store it persists to: journals, leases and lock files are mutated by
# racing replicas by design.
go test -race ./internal/serve/... ./internal/store/...
# The event-driven simulator core: concurrent Runs must be race-free
# (-short skips the 48-cell bit-identicality pin, which the plain
# `go test ./...` line above already ran in full).
go test -race -short ./internal/sim/...
# Scalability smoke: a 1024-node (4096-core) shape-only sweep across
# the paper's algorithms must finish inside its wall-clock budget.
go test -run 'TestSimScalabilitySmoke1024Nodes' -count=1 ./internal/workload/
# The parallel experiment driver: the concurrent sweep must be race-free
# and bit-identical to the sequential one, including under cache churn
# and live metric/span reads from the observability layer — and the
# chaos sweep (fault injection + containment + checkpoint) must hold
# its determinism invariants under the race detector too.
go test -race -run 'TestExecuteParallelBitIdenticalToSequential|TestConcurrentExecuteResetAndMetricsRace|TestChaosSweepInvariants|TestCheckpointResume|TestGuidedSweepDeterminism' -count=1 ./internal/workload/
# The energy-complexity model the guided planner fits is pure math,
# but it rides the concurrent driver: keep its own tests in the gate.
go test -race ./internal/model/
go test -run 'TestReplayReconcilesAtSaneInterval|TestReplayFlagsInjectedWrapLoss|TestReplaySameRunReconciledWhenSampledFastEnough' -count=1 ./internal/monitor/
# Trace export smoke: the real powertrace binary must emit a
# structurally valid Perfetto trace.
./scripts/trace_smoke.sh
# Chaos smoke: a seeded fault-injection sweep through the real binary
# must degrade gracefully and resume from its checkpoint bit-identically.
./scripts/chaos_smoke.sh
# Distributed smoke: a 4-node GigE sweep through the real epscale
# binary must render the comm-bound table, reconcile every cell, and
# resume from its checkpoint bit-identically.
./scripts/dist_smoke.sh
# Model smoke: a guided sweep through the real epscale binary must
# stay inside its 1/3 measurement budget, fit tightly, and render
# deterministically.
./scripts/model_smoke.sh
# Serve smoke: the real epscaled daemon must single-flight two
# overlapping identical sweeps, replay results byte-identically, and
# drain cleanly on SIGTERM.
./scripts/serve_smoke.sh
# Crash smoke: kill -9 a leaseholder replica mid-sweep; the survivor
# sharing the store must steal the lease, resume from the journal
# without re-executing journaled cells, and replay byte-identically.
./scripts/crash_smoke.sh
echo "check.sh: all green"
