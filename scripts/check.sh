#!/usr/bin/env bash
# Repo verify gate: formatting, vet, build, full tests, a race pass
# over the concurrent packages (the real executor and the parallel GEMM
# kernel) and the measurement stack (device poll hooks, PAPI meters,
# the polling monitor and trace resampling), and a named monitor
# reconciliation smoke: measured energy must match device ground truth,
# and deliberately undersampled runs must be flagged for wrap loss.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/kernel/... ./internal/obs/...
go test -race ./internal/rapl/... ./internal/papi/... ./internal/trace/... ./internal/monitor/...
# The parallel experiment driver: the concurrent sweep must be race-free
# and bit-identical to the sequential one, including under cache churn
# and live metric/span reads from the observability layer.
go test -race -run 'TestExecuteParallelBitIdenticalToSequential|TestConcurrentExecuteResetAndMetricsRace' -count=1 ./internal/workload/
go test -run 'TestReplayReconcilesAtSaneInterval|TestReplayFlagsInjectedWrapLoss|TestReplaySameRunReconciledWhenSampledFastEnough' -count=1 ./internal/monitor/
# Trace export smoke: the real powertrace binary must emit a
# structurally valid Perfetto trace.
./scripts/trace_smoke.sh
echo "check.sh: all green"
