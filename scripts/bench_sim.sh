#!/usr/bin/env bash
# Runs the event-driven simulator core benchmark (BenchmarkSimRun's
# worker-count sweep, 4 → 262144) and records ns/op, ns/leaf, B/op and
# allocs/op in BENCH_sim.json so the scheduler's perf trajectory is
# comparable across PRs. ns/leaf is the per-event dispatch figure: it
# should stay near-flat across the sweep (O(log workers) scheduling).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_sim.json
# -run '^$' matches no tests ('XXX' was a substring match that still
# ran any test whose name contains it).
raw=$(go test ./internal/sim/ -run '^$' -bench 'BenchmarkSimRun' -benchmem "$@")
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^BenchmarkSimRun\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s, \"ns_per_leaf\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        name, $2, $3, $5, $7, $9
}
END { print "\n}" }
' > "$out"
echo "bench_sim.sh: wrote $out"
